package bench

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/mpc"
	"repro/scenario"
)

// E11Manifest expresses an E11CirEval experiment row — one whole-engine
// evaluation of a named circuit family — as a declarative scenario
// manifest, so experiment tables can be stored, validated and batch-run
// by cmd/scenario alongside the built-in corpus.
func E11Manifest(cfg proto.Config, family string, network mpc.Network, seed uint64) *scenario.Manifest {
	m := &scenario.Manifest{
		Name:        fmt.Sprintf("e11-%s-%s-n%d-seed%d", family, network, cfg.N, seed),
		Description: fmt.Sprintf("E11 whole-engine row: %s circuit, %s network, n=%d", family, network, cfg.N),
		Parties:     scenario.Parties{N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta},
		Network:     scenario.NetworkSpec{Kind: string(network), Delta: int64(cfg.Delta)},
		Circuit:     scenario.CircuitSpec{Family: family},
		Seed:        seed,
		Expect: scenario.Expect{
			Consistent:   true,
			MinAgreement: cfg.N - cfg.Ts,
		},
	}
	if network == mpc.Sync {
		m.Expect.WithinDeadline = true
	}
	return m
}

// FromManifest runs a declarative scenario and reports it in the bench
// Measure shape: OK is the manifest's assertion verdict.
func FromManifest(m *scenario.Manifest) (Measure, error) {
	rep, err := scenario.Run(m)
	if err != nil {
		return Measure{}, err
	}
	return Measure{
		HonestMsgs:  rep.HonestMessages,
		HonestBytes: rep.HonestBytes,
		LastOutput:  sim.Time(rep.LastTick),
		Bound:       sim.Time(rep.Deadline),
		Events:      rep.Events,
		OK:          rep.Pass,
	}, nil
}
