package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/circuit"
	"repro/field"
	"repro/internal/proto"
	"repro/mpc"
)

// CheckpointRow is one E16 checkpoint/restore measurement: a session
// engine preprocesses a K-evaluation triple budget, serves one
// evaluation, and is then snapshotted and restored. The row compares
// the wall-clock of the original preprocessing against the wall-clock
// of restoring the same pool from the checkpoint — the figure that
// justifies checkpointing at all: a restored engine skips the
// ΠPreProcessing protocol entirely.
type CheckpointRow struct {
	Name string `json:"name"`
	// K is the evaluation budget the pool was filled for; CM the
	// per-evaluation triple need.
	K  int `json:"evaluations"`
	CM int `json:"c_m_per_eval"`
	// CheckpointBytes is the serialized engine checkpoint size.
	CheckpointBytes int `json:"checkpoint_bytes"`
	// PreprocessNs is the wall-clock of the original pool fill;
	// SnapshotNs and RestoreNs the wall-clock of Engine.Snapshot and
	// RestoreEngine over the same state (minimum over repetitions).
	PreprocessNs int64 `json:"preprocess_ns"`
	SnapshotNs   int64 `json:"snapshot_ns"`
	RestoreNs    int64 `json:"restore_ns"`
	// RestoreSpeedup is PreprocessNs / RestoreNs.
	RestoreSpeedup float64 `json:"restore_speedup"`
	// OutputsOK requires the restored engine's next evaluation to
	// reproduce the original engine's bit-for-bit.
	OutputsOK bool `json:"outputs_ok"`
}

// CheckpointReport is the E16 section written to BENCH_PR7.json.
type CheckpointReport struct {
	Note string          `json:"note"`
	Rows []CheckpointRow `json:"checkpoint_pr7"`
	// OK is the gate: every row reproduces the original engine's
	// outputs after restore and restores faster than it preprocessed.
	OK bool `json:"ok"`
}

// minDuration runs fn reps times and returns the fastest wall-clock.
func minDuration(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// E16Checkpoint measures one checkpoint/restore row: preprocess a
// K-evaluation budget, serve one evaluation, snapshot, restore, and
// check that original and restored engines produce bit-identical next
// evaluations.
func E16Checkpoint(cfg proto.Config, name string, circ *circuit.Circuit, k int, seed uint64) CheckpointRow {
	mcfg := mpc.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Network: mpc.Sync, Delta: int64(cfg.Delta), Seed: seed,
	}
	inputs := make([]field.Element, cfg.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	row := CheckpointRow{Name: name, K: k, CM: circ.MulCount}
	budget := k * circ.MulCount
	if budget < 1 {
		budget = 1
	}

	// Preprocess wall-clock: each repetition needs its own engine (an
	// engine preprocesses once); the last one becomes the session.
	var eng *mpc.Engine
	ppTime, err := minDuration(3, func() error {
		e, err := mpc.NewEngine(mcfg)
		if err != nil {
			return err
		}
		if _, err := e.Preprocess(budget); err != nil {
			return err
		}
		eng = e
		return nil
	})
	if err != nil {
		return row
	}
	row.PreprocessNs = ppTime.Nanoseconds()

	// Put the session mid-workload before checkpointing, so the
	// restored state is a realistic resume point, not a fresh pool.
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		return row
	}

	var buf bytes.Buffer
	snapTime, err := minDuration(3, func() error {
		buf.Reset()
		return eng.Snapshot(&buf)
	})
	if err != nil {
		return row
	}
	row.SnapshotNs = snapTime.Nanoseconds()
	row.CheckpointBytes = buf.Len()

	var restored *mpc.Engine
	restTime, err := minDuration(3, func() error {
		e, err := mpc.RestoreEngine(mcfg, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		restored = e
		return nil
	})
	if err != nil {
		return row
	}
	row.RestoreNs = restTime.Nanoseconds()
	if row.RestoreNs > 0 {
		row.RestoreSpeedup = float64(row.PreprocessNs) / float64(row.RestoreNs)
	}

	// Differential: the restored engine's next evaluation must be
	// bit-identical to the original engine's.
	orig, err := eng.Evaluate(circ, inputs)
	if err != nil {
		return row
	}
	twin, err := restored.Evaluate(circ, inputs)
	if err != nil {
		return row
	}
	ok := len(orig.Outputs) == len(twin.Outputs) &&
		orig.HonestMessages == twin.HonestMessages &&
		orig.HonestBytes == twin.HonestBytes
	for i := range orig.Outputs {
		if !ok || orig.Outputs[i] != twin.Outputs[i] {
			ok = false
			break
		}
	}
	row.OutputsOK = ok
	return row
}

// RunCheckpoint measures the tracked E16 rows at K = 8, seed 1.
func RunCheckpoint() *CheckpointReport {
	report := &CheckpointReport{
		Note: "E16: engine checkpoint/restore vs re-preprocessing a K=8 triple budget; the restored " +
			"engine's next evaluation must be bit-identical to the original's, and restore_ns must be " +
			"below preprocess_ns (restore skips the ΠPreProcessing protocol entirely)",
		OK: true,
	}
	cases := []struct {
		name string
		cfg  proto.Config
		circ *circuit.Circuit
	}{
		{"E16Ckpt/product/n5", Config5(), circuit.Product(5)},
		{"E16Ckpt/product/n8", Config8(), circuit.Product(8)},
	}
	for _, c := range cases {
		row := E16Checkpoint(c.cfg, c.name, c.circ, 8, 1)
		report.Rows = append(report.Rows, row)
		if !row.OutputsOK || row.RestoreNs <= 0 || row.RestoreNs >= row.PreprocessNs {
			report.OK = false
		}
	}
	return report
}

// WriteCheckpoint renders the report as indented JSON.
func WriteCheckpoint(w io.Writer, report *CheckpointReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatCheckpointRow renders a row for the stderr summary.
func FormatCheckpointRow(r CheckpointRow) string {
	return fmt.Sprintf("%-22s restore %8.2fms vs preprocess %8.2fms (%.0fx faster, %d byte checkpoint)",
		r.Name, float64(r.RestoreNs)/1e6, float64(r.PreprocessNs)/1e6, r.RestoreSpeedup, r.CheckpointBytes)
}
