package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/circuit"
)

// PerfRow is one benchmark row of a perf report: wall-clock ns/op plus
// the protocol metrics that must stay invariant across optimisation
// work (the paper's reproduction targets).
type PerfRow struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Bytes   uint64 `json:"bytes_per_op"`
	Msgs    uint64 `json:"msgs_per_op"`
	VTicks  int64  `json:"vticks_per_op"`
	Bound   int64  `json:"bound"`
}

// LayerRow is one message-complexity row of the PR 3 layer-batching
// comparison: the same online-phase workload (E13Online) run through
// the retained per-gate reference evaluator and the layered batched
// one. OutputsOK reports that *both* runs terminated with the
// clear-circuit outputs — the invariance verdict for the layering
// work, whose only permitted change is message grouping.
type LayerRow struct {
	Name         string  `json:"name"`
	CM           int     `json:"c_m"`
	DM           int     `json:"d_m"`
	PerGateMsgs  uint64  `json:"per_gate_msgs"`
	LayeredMsgs  uint64  `json:"layered_msgs"`
	MsgRatio     float64 `json:"msg_ratio"`
	PerGateBytes uint64  `json:"per_gate_bytes"`
	LayeredBytes uint64  `json:"layered_bytes"`
	OutputsOK    bool    `json:"outputs_ok"`
}

// PerfReport is the JSON document emitted to BENCH_PR3.json: the
// recorded pre-PR2 wall-clock baseline next to freshly measured rows
// with per-experiment speedups, plus the PR 3 layer-batching
// message-complexity comparison. Protocol metrics (bytes, msgs,
// vticks) of the baseline rows must be identical between the two
// wall-clock columns — that perf work may only change wall-clock — and
// every layer-batching row must report OutputsOK.
type PerfReport struct {
	Note          string             `json:"note"`
	Baseline      []PerfRow          `json:"baseline_pre_pr2"`
	Current       []PerfRow          `json:"current"`
	Speedup       map[string]float64 `json:"speedup"`
	Invariant     bool               `json:"metrics_invariant"`
	LayerBatching []LayerRow         `json:"layer_batching_pr3"`
}

// Recorded per-layer baseline of the tracked mul-deep online bench
// (MulDeepCircuit on Config8, seed 1): the CI budget guard fails if
// the layered evaluator's honest-origin message count regresses above
// MulDeepLayeredMsgsBaseline. The per-gate figure is kept for the
// ratio's denominator; the acceptance floor is a ≥ 3× reduction.
const (
	MulDeepLayeredMsgsBaseline uint64 = 640
	MulDeepPerGateMsgsBaseline uint64 = 4224
)

// BaselinePrePR2 is the pre-PR2 measurement of the tracked benchmarks
// (seed repository state, -benchtime 2x, Intel Xeon @ 2.10GHz): the
// trajectory anchor every later perf PR is compared against.
func BaselinePrePR2() []PerfRow {
	return []PerfRow{
		{Name: "E7VSS/n8/L1", NsPerOp: 124137044, Bytes: 3449872, Msgs: 86368, VTicks: 843, Bound: 910},
		{Name: "E7VSS/n8/L8", NsPerOp: 129975602, Bytes: 3491144, Msgs: 86368, VTicks: 843, Bound: 910},
		{Name: "E8ACS/n5/L1", NsPerOp: 125975164, Bytes: 2601620, Msgs: 63545, VTicks: 843, Bound: 1070},
		{Name: "E8ACS/n8/L1", NsPerOp: 1416698356, Bytes: 32782400, Msgs: 729304, VTicks: 1056, Bound: 1310},
	}
}

// perfCases enumerates the tracked benchmark configurations in baseline
// order; rows without a recorded pre-PR2 entry (the PR 3 mul-deep
// online bench) anchor the trajectory from their first recording.
func perfCases() []struct {
	name string
	run  func(seed uint64) Measure
} {
	return []struct {
		name string
		run  func(seed uint64) Measure
	}{
		{"E7VSS/n8/L1", func(seed uint64) Measure { return E7VSS(Config8(), 1, seed) }},
		{"E7VSS/n8/L8", func(seed uint64) Measure { return E7VSS(Config8(), 8, seed) }},
		{"E8ACS/n5/L1", func(seed uint64) Measure { return E8ACS(Config5(), 1, seed) }},
		{"E8ACS/n8/L1", func(seed uint64) Measure { return E8ACS(Config8(), 1, seed) }},
		{"E13Online/grid8x8/n8", func(seed uint64) Measure { return E13Online(Config8(), MulDeepCircuit(), false, seed) }},
	}
}

// layerCases enumerates the online-phase workloads of the
// layer-batching comparison; the first is the tracked mul-deep bench
// behind the CI budget guard.
func layerCases() []struct {
	name string
	circ *circuit.Circuit
} {
	return []struct {
		name string
		circ *circuit.Circuit
	}{
		{"E13Online/grid8x8/n8", MulDeepCircuit()},
		{"E13Online/product/n8", circuit.Product(8)},
		{"E13Online/matmul/n8", circuit.MatMul2x2()},
	}
}

// RunLayerBatching measures the per-gate vs layered online-phase
// message complexity on every comparison workload at seed 1 (the
// recorded-baseline seed).
func RunLayerBatching() []LayerRow {
	rows := make([]LayerRow, 0, 4)
	for _, c := range layerCases() {
		per := E13Online(Config8(), c.circ, true, 1)
		lay := E13Online(Config8(), c.circ, false, 1)
		rows = append(rows, LayerRow{
			Name:         c.name,
			CM:           c.circ.MulCount,
			DM:           c.circ.MulDepth,
			PerGateMsgs:  per.HonestMsgs,
			LayeredMsgs:  lay.HonestMsgs,
			MsgRatio:     float64(per.HonestMsgs) / float64(lay.HonestMsgs),
			PerGateBytes: per.HonestBytes,
			LayeredBytes: lay.HonestBytes,
			OutputsOK:    per.OK && lay.OK,
		})
	}
	return rows
}

// RunPerf measures the tracked benchmarks via testing.Benchmark and
// assembles the report, including the layer-batching message-
// complexity comparison.
func RunPerf() (*PerfReport, error) {
	report := &PerfReport{
		Note: "wall-clock per protocol run (testing.Benchmark); bytes/msgs/vticks are " +
			"protocol invariants and must match the baseline exactly; layer_batching_pr3 " +
			"compares online-phase honest messages per-gate vs per-layer (outputs must match)",
		Baseline:  BaselinePrePR2(),
		Speedup:   map[string]float64{},
		Invariant: true,
	}
	report.LayerBatching = RunLayerBatching()
	for _, row := range report.LayerBatching {
		if !row.OutputsOK {
			return nil, fmt.Errorf("bench: %s: evaluator outputs diverged from the clear circuit", row.Name)
		}
	}
	baseline := map[string]PerfRow{}
	for _, row := range report.Baseline {
		baseline[row.Name] = row
	}
	for _, c := range perfCases() {
		// Protocol metrics are a function of the seed (the network
		// schedule); the baseline recorded seed 1, so the invariant
		// comparison re-runs exactly that seed.
		ref := c.run(1)
		if !ref.OK {
			return nil, fmt.Errorf("bench: %s violated its experiment invariant", c.name)
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.run(uint64(i))
			}
		})
		row := PerfRow{
			Name:    c.name,
			NsPerOp: res.NsPerOp(),
			Bytes:   ref.HonestBytes,
			Msgs:    ref.HonestMsgs,
			VTicks:  int64(ref.LastOutput),
			Bound:   int64(ref.Bound),
		}
		report.Current = append(report.Current, row)
		if base, ok := baseline[row.Name]; ok {
			report.Speedup[row.Name] = float64(base.NsPerOp) / float64(row.NsPerOp)
			if base.Bytes != row.Bytes || base.Msgs != row.Msgs || base.VTicks != row.VTicks {
				report.Invariant = false
			}
		}
	}
	return report, nil
}

// WritePerf renders the report as indented JSON.
func WritePerf(w io.Writer, report *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
