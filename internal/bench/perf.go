package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
)

// PerfRow is one benchmark row of a perf report: wall-clock ns/op plus
// the protocol metrics that must stay invariant across optimisation
// work (the paper's reproduction targets).
type PerfRow struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Bytes   uint64 `json:"bytes_per_op"`
	Msgs    uint64 `json:"msgs_per_op"`
	VTicks  int64  `json:"vticks_per_op"`
	Bound   int64  `json:"bound"`
}

// PerfReport is the JSON document emitted to BENCH_PR2.json: the
// recorded pre-PR2 baseline next to freshly measured rows, with
// per-experiment speedups. Protocol metrics (bytes, msgs, vticks) must
// be identical between the two columns — the perf work may only change
// wall-clock.
type PerfReport struct {
	Note      string             `json:"note"`
	Baseline  []PerfRow          `json:"baseline_pre_pr2"`
	Current   []PerfRow          `json:"current"`
	Speedup   map[string]float64 `json:"speedup"`
	Invariant bool               `json:"metrics_invariant"`
}

// BaselinePrePR2 is the pre-PR2 measurement of the tracked benchmarks
// (seed repository state, -benchtime 2x, Intel Xeon @ 2.10GHz): the
// trajectory anchor every later perf PR is compared against.
func BaselinePrePR2() []PerfRow {
	return []PerfRow{
		{Name: "E7VSS/n8/L1", NsPerOp: 124137044, Bytes: 3449872, Msgs: 86368, VTicks: 843, Bound: 910},
		{Name: "E7VSS/n8/L8", NsPerOp: 129975602, Bytes: 3491144, Msgs: 86368, VTicks: 843, Bound: 910},
		{Name: "E8ACS/n5/L1", NsPerOp: 125975164, Bytes: 2601620, Msgs: 63545, VTicks: 843, Bound: 1070},
		{Name: "E8ACS/n8/L1", NsPerOp: 1416698356, Bytes: 32782400, Msgs: 729304, VTicks: 1056, Bound: 1310},
	}
}

// perfCases enumerates the tracked benchmark configurations in baseline
// order.
func perfCases() []struct {
	name string
	run  func(seed uint64) Measure
} {
	return []struct {
		name string
		run  func(seed uint64) Measure
	}{
		{"E7VSS/n8/L1", func(seed uint64) Measure { return E7VSS(Config8(), 1, seed) }},
		{"E7VSS/n8/L8", func(seed uint64) Measure { return E7VSS(Config8(), 8, seed) }},
		{"E8ACS/n5/L1", func(seed uint64) Measure { return E8ACS(Config5(), 1, seed) }},
		{"E8ACS/n8/L1", func(seed uint64) Measure { return E8ACS(Config8(), 1, seed) }},
	}
}

// RunPerf measures the tracked benchmarks via testing.Benchmark and
// assembles the report.
func RunPerf() (*PerfReport, error) {
	report := &PerfReport{
		Note: "wall-clock per protocol run (testing.Benchmark); bytes/msgs/vticks are " +
			"protocol invariants and must match the baseline exactly",
		Baseline:  BaselinePrePR2(),
		Speedup:   map[string]float64{},
		Invariant: true,
	}
	baseline := map[string]PerfRow{}
	for _, row := range report.Baseline {
		baseline[row.Name] = row
	}
	for _, c := range perfCases() {
		// Protocol metrics are a function of the seed (the network
		// schedule); the baseline recorded seed 1, so the invariant
		// comparison re-runs exactly that seed.
		ref := c.run(1)
		if !ref.OK {
			return nil, fmt.Errorf("bench: %s violated its experiment invariant", c.name)
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.run(uint64(i))
			}
		})
		row := PerfRow{
			Name:    c.name,
			NsPerOp: res.NsPerOp(),
			Bytes:   ref.HonestBytes,
			Msgs:    ref.HonestMsgs,
			VTicks:  int64(ref.LastOutput),
			Bound:   int64(ref.Bound),
		}
		report.Current = append(report.Current, row)
		if base, ok := baseline[row.Name]; ok {
			report.Speedup[row.Name] = float64(base.NsPerOp) / float64(row.NsPerOp)
			if base.Bytes != row.Bytes || base.Msgs != row.Msgs || base.VTicks != row.VTicks {
				report.Invariant = false
			}
		}
	}
	return report, nil
}

// WritePerf renders the report as indented JSON.
func WritePerf(w io.Writer, report *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
