package bench

import (
	"testing"

	"repro/circuit"
)

// TestE14Amortization is the PR 5 acceptance gate behind
// `make bench-json`: every tracked session-engine row must reproduce
// the one-shot outputs bit-for-bit and amortize (engine msgs/eval
// strictly below the one-shot cost).
func TestE14Amortization(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs 8 evaluations per row; skipped under -short")
	}
	report := RunAmortization()
	for _, row := range report.Rows {
		if !row.OutputsOK {
			t.Errorf("%s: engine outputs diverged from one-shot outputs", row.Name)
		}
		if row.Amortization <= 1 {
			t.Errorf("%s: %.0f engine msgs/eval does not beat the %d one-shot msgs",
				row.Name, row.EngineMsgsPerEval, row.OneShotMsgs)
		}
		t.Log(FormatAmortRow(row))
	}
	if !report.OK {
		t.Error("report gate is false")
	}
}

// TestE14SmallRow keeps a cheap fixed row under plain `go test`: K=2
// on the smallest config, outputs identical and amortized.
func TestE14SmallRow(t *testing.T) {
	row := E14Amortized(Config5(), "E14Amort/product/n5/k2", circuit.Product(5), 2, 1)
	if !row.OutputsOK {
		t.Fatal("engine outputs diverged from one-shot outputs")
	}
	if row.Amortization <= 1 {
		t.Fatalf("no amortization at K=2: %+v", row)
	}
}
