package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/circuit"
	"repro/field"
	"repro/internal/proto"
	"repro/mpc"
)

// PipelineRow is one E15 pipelined-serving measurement: K evaluations
// of one circuit served through a sliding window of Depth in-flight
// EvaluateAsync epochs on a single session engine.
type PipelineRow struct {
	Name  string `json:"name"`
	Depth int    `json:"depth"`
	K     int    `json:"evaluations"`
	// TicksSpan is the virtual-clock span covering all K evaluations
	// (first start to last termination) — the simulator's wall clock.
	// TicksPerEval is its per-evaluation amortization: the figure
	// pipelining exists to shrink.
	TicksSpan    int64   `json:"ticks_span"`
	TicksPerEval float64 `json:"ticks_per_eval"`
	// MsgsPerEval and BytesPerEval are the honest online traffic per
	// evaluation. Overlap must not buy the tick savings with extra
	// traffic: the gate holds these to the depth-1 figures within a
	// tight band (PRNG draw-order noise only — see the mpc pipelining
	// notes).
	MsgsPerEval  float64 `json:"msgs_per_eval"`
	BytesPerEval float64 `json:"bytes_per_eval"`
	// HostNSPerEval is the real host time per evaluation —
	// informational only: the event count is nearly depth-invariant, so
	// host time measures the machine, not the protocol.
	HostNSPerEval int64 `json:"host_ns_per_eval"`
	// OutputsOK requires every pipelined evaluation to reproduce the
	// one-shot reference outputs bit for bit.
	OutputsOK bool `json:"outputs_ok"`
	// SpanSpeedup is the depth-1 span divided by this row's span (1.0
	// on the depth-1 row itself).
	SpanSpeedup float64 `json:"span_speedup"`
}

// PipelineReport is the E15 section written to BENCH_PR9.json.
type PipelineReport struct {
	Note string        `json:"note"`
	Rows []PipelineRow `json:"pipeline_pr9"`
	// OK is the gate: every row reproduces the one-shot outputs, every
	// depth >= 4 row beats the depth-1 virtual span per evaluation, and
	// its msgs/eval stays within 1% of the depth-1 figure.
	OK bool `json:"ok"`
}

// E15Pipelined measures one pipelined-serving row.
func E15Pipelined(cfg proto.Config, name string, circ *circuit.Circuit, k, depth int, seed uint64) PipelineRow {
	mcfg := mpc.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Network: mpc.Sync, Delta: int64(cfg.Delta), Seed: seed,
	}
	inputs := make([]field.Element, cfg.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	row := PipelineRow{Name: name, Depth: depth, K: k}
	ref, err := mpc.Run(mcfg, circ, inputs, nil)
	if err != nil {
		return row
	}

	eng, err := mpc.NewEngine(mcfg)
	if err != nil {
		return row
	}
	if _, err := eng.Preprocess(k * circ.MulCount); err != nil {
		return row
	}
	ok := true
	check := func(p *mpc.PendingEval) bool {
		res, err := p.Wait()
		if err != nil || len(res.Outputs) != len(ref.Outputs) {
			return false
		}
		for i := range ref.Outputs {
			if res.Outputs[i] != ref.Outputs[i] {
				return false
			}
		}
		return true
	}
	begin := time.Now()
	var window []*mpc.PendingEval
	for round := 0; round < k; round++ {
		if len(window) == depth {
			ok = check(window[0]) && ok
			window = window[1:]
		}
		p, err := eng.EvaluateAsync(circ, inputs)
		if err != nil {
			return row
		}
		window = append(window, p)
	}
	for _, p := range window {
		ok = check(p) && ok
	}
	if err := eng.Flush(); err != nil {
		return row
	}
	host := time.Since(begin)

	st := eng.Stats()
	first, last := int64(-1), int64(0)
	for _, s := range st.Evals {
		if first < 0 || s.StartTick < first {
			first = s.StartTick
		}
		if s.EndTick > last {
			last = s.EndTick
		}
	}
	row.TicksSpan = last - first
	row.TicksPerEval = float64(row.TicksSpan) / float64(k)
	row.MsgsPerEval = float64(st.EvalMessages) / float64(k)
	row.BytesPerEval = float64(st.EvalBytes) / float64(k)
	row.HostNSPerEval = host.Nanoseconds() / int64(k)
	row.OutputsOK = ok
	return row
}

// pipelineDepths is the tracked E15 depth ladder.
var pipelineDepths = []int{1, 4, 16}

// RunPipeline measures the tracked E15 rows: K = 16 evaluations of the
// product and stats circuits at n = 5, seed 1, at depths 1, 4 and 16.
func RunPipeline() *PipelineReport {
	report := &PipelineReport{
		Note: "E15 pipelined serving: one session engine serving K=16 evaluations through a " +
			"sliding window of <depth> in-flight epochs; outputs must match the one-shot run " +
			"bit-for-bit at every depth, ticks_per_eval (virtual wall clock) must improve at " +
			"depth >= 4, and msgs_per_eval must stay within 1% of the depth-1 figure " +
			"(host_ns_per_eval is informational)",
		OK: true,
	}
	cases := []struct {
		name string
		cfg  proto.Config
		circ *circuit.Circuit
	}{
		{"E15Pipeline/product/n5", Config5(), circuit.Product(5)},
		{"E15Pipeline/stats/n5", Config5(), circuit.SumAndVariancePieces(5)},
	}
	for _, c := range cases {
		var base PipelineRow
		for _, depth := range pipelineDepths {
			row := E15Pipelined(c.cfg, c.name, c.circ, 16, depth, 1)
			if depth == 1 {
				base = row
			}
			if base.TicksSpan > 0 {
				row.SpanSpeedup = float64(base.TicksSpan) / float64(row.TicksSpan)
			}
			report.Rows = append(report.Rows, row)
			if !row.OutputsOK {
				report.OK = false
			}
			if depth >= 4 {
				msgsDrift := row.MsgsPerEval/base.MsgsPerEval - 1
				if msgsDrift < 0 {
					msgsDrift = -msgsDrift
				}
				if row.TicksPerEval >= base.TicksPerEval || msgsDrift > 0.01 {
					report.OK = false
				}
			}
		}
	}
	return report
}

// WritePipeline renders the report as indented JSON.
func WritePipeline(w io.Writer, report *PipelineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatPipelineRow renders a row for the stderr summary.
func FormatPipelineRow(r PipelineRow) string {
	return fmt.Sprintf("%-24s depth %-3d %8.1f ticks/eval %9.0f msgs/eval (%.2fx span)",
		r.Name, r.Depth, r.TicksPerEval, r.MsgsPerEval, r.SpanSpeedup)
}
