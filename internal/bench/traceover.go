package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/circuit"
	"repro/field"
	"repro/internal/obs"
	"repro/mpc"
)

// TraceRow is one trace-overhead measurement: the same full protocol
// run (mpc.Run) wall-clocked untraced and traced into a fresh
// in-memory collector. Overhead is traced/untraced; Events is the
// event-stream length of one seed-1 run; OutputsOK requires the traced
// and untraced runs to agree with each other and with the clear
// circuit (tracing may never change behaviour).
type TraceRow struct {
	Name       string  `json:"name"`
	UntracedNs int64   `json:"untraced_ns_per_op"`
	TracedNs   int64   `json:"traced_ns_per_op"`
	Overhead   float64 `json:"overhead"`
	Events     int     `json:"events_per_run"`
	OutputsOK  bool    `json:"outputs_ok"`
}

// TraceReport is the JSON document emitted to BENCH_PR6.json: the PR 6
// tracing-layer overhead figures. The nil-tracer path is additionally
// guarded by a 0-alloc test (internal/sim TestNilTracerZeroAllocDeliverPath);
// this report quantifies the *enabled* cost.
type TraceReport struct {
	Note string     `json:"note"`
	Rows []TraceRow `json:"trace_overhead_pr6"`
	OK   bool       `json:"ok"`
}

// traceCase is the tracked workload: a full end-to-end run (ACS input
// phase, triple preprocessing, layered online phase) so every
// instrumented subsystem contributes events.
func traceCase() (name string, cfg mpc.Config, circ *circuit.Circuit, inputs []field.Element) {
	p := Config5()
	cfg = mpc.Config{N: p.N, Ts: p.Ts, Ta: p.Ta, Network: mpc.Sync, Delta: int64(p.Delta)}
	circ = circuit.Product(p.N)
	inputs = make([]field.Element, p.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	return "E15Trace/product/n5", cfg, circ, inputs
}

// RunTraceOverhead wall-clocks the tracked case untraced vs traced
// (fresh obs.Collector per iteration, like a real `scenario trace`
// invocation) and verifies output/metric equality between the modes.
func RunTraceOverhead() *TraceReport {
	name, cfg, circ, inputs := traceCase()
	report := &TraceReport{
		Note: "wall-clock of one full mpc.Run untraced vs traced into a fresh in-memory " +
			"collector; outputs and honest-traffic metrics must be identical between modes " +
			"(the nil-tracer hot path is separately guarded to 0 allocs/op)",
		OK: true,
	}

	run := func(seed uint64, tr obs.Tracer) (*mpc.Result, error) {
		c := cfg
		c.Seed = seed
		return mpc.RunTraced(c, circ, inputs, nil, tr)
	}

	// Equality check at the recorded-baseline seed.
	refCol := obs.NewCollector()
	plain, errP := run(1, nil)
	traced, errT := run(1, refCol)
	ok := errP == nil && errT == nil
	if ok {
		want, err := mpc.ExpectedOutputs(circ, inputs, plain.CS)
		ok = err == nil && len(plain.Outputs) == len(want)
		for i := 0; ok && i < len(want); i++ {
			ok = plain.Outputs[i] == want[i] && traced.Outputs[i] == want[i]
		}
		ok = ok &&
			plain.HonestMessages == traced.HonestMessages &&
			plain.HonestBytes == traced.HonestBytes &&
			plain.Events == traced.Events
	}

	untraced := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(uint64(i), nil)
		}
	})
	withTrace := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(uint64(i), obs.NewCollector())
		}
	})

	row := TraceRow{
		Name:       name,
		UntracedNs: untraced.NsPerOp(),
		TracedNs:   withTrace.NsPerOp(),
		Overhead:   float64(withTrace.NsPerOp()) / float64(untraced.NsPerOp()),
		Events:     refCol.Len(),
		OutputsOK:  ok,
	}
	report.Rows = append(report.Rows, row)
	report.OK = report.OK && ok
	return report
}

// WriteTrace renders the report as indented JSON.
func WriteTrace(w io.Writer, report *TraceReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatTraceRow renders one row for the CLI's stderr summary.
func FormatTraceRow(r TraceRow) string {
	return fmt.Sprintf("%-24s untraced %8.2fms traced %8.2fms (%.2fx, %d events)",
		r.Name, float64(r.UntracedNs)/1e6, float64(r.TracedNs)/1e6, r.Overhead, r.Events)
}
