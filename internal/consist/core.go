// Package consist implements the consistency-graph core shared by ΠWPS
// (Fig 3) and ΠVSS (Fig 4). Both protocols follow the same skeleton:
//
//  1. Parties publish OK/NOK results of pair-wise checks: one ΠBC
//     result vector at a structural slot (regular-mode data for the
//     acceptance deadline), plus per-pair Acasts for checks completing
//     later (fallback-mode data).
//  2. The dealer prunes senders of provably wrong NOKs, computes the
//     well-connected set W, finds an (n,ts)-star in G_D[W], and
//     broadcasts (W, E, F) through ΠBC one TBC after the slot.
//  3. Two TBC after the slot, every party evaluates the acceptance
//     conditions on the regular-mode data and feeds the outcome into a
//     ΠBA (input 0 ⟺ accepted).
//  4. If the ΠBA outputs 1, the dealer searches its (monotone,
//     eventually-complete) graph for an (n,ta)-star and Acasts the
//     first one found; parties adopt it once it becomes a star in
//     their own graph.
//
// The owning protocol supplies the pair-check results and consumes the
// core's events to compute its output shares.
package consist

import (
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/acast"
	"repro/internal/ba"
	"repro/internal/bc"
	"repro/internal/graph"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/wire"
)

// Report tags inside result vectors.
const (
	tagNone uint8 = iota
	tagOK
	tagNOK
)

// Report is one party's published check result about another party.
type Report struct {
	OK     bool
	NokIdx int           // least failing polynomial index (0-based), for NOK
	NokVal field.Element // reporter's own value of the disputed point, for NOK
}

// EncodeReport serialises a report.
func EncodeReport(rep *Report) []byte {
	wr := wire.NewWriter()
	if rep.OK {
		wr.Uint(uint64(tagOK))
	} else {
		wr.Uint(uint64(tagNOK)).Int(rep.NokIdx).Element(rep.NokVal)
	}
	return wr.Bytes()
}

func decodeReport(r *wire.Reader) (*Report, bool) {
	tag := uint8(r.Uint())
	if r.Err() != nil {
		return nil, false
	}
	switch tag {
	case tagNone:
		return nil, true
	case tagOK:
		return &Report{OK: true}, true
	case tagNOK:
		idx := r.Int()
		val := r.Element()
		if r.Err() != nil {
			return nil, false
		}
		return &Report{NokIdx: idx, NokVal: val}, true
	default:
		return nil, false
	}
}

// WEF is the dealer's (W, E, F) announcement.
type WEF struct {
	W    []int
	Star graph.Star
}

// Callbacks connect the core to its owning protocol.
type Callbacks struct {
	// VerifyNOK reports whether a regular-mode NOK(i, j, idx, val) is
	// *correct* with respect to the dealer's polynomials (only invoked
	// at the dealer). Senders of incorrect NOKs are pruned before W is
	// computed. A nil VerifyNOK prunes nobody.
	VerifyNOK func(i, j, idx int, val field.Element) bool
	// OnUpdate fires after any event that can unblock the owner's
	// output computation: graph growth, (W,E,F) arrival, BA decision,
	// or star acceptance.
	OnUpdate func()
}

// Core is one party's consistency-graph state.
type Core struct {
	rt     *proto.Runtime
	inst   string
	dealer int
	cfg    proto.Config
	tb     timing.Bounds
	slot   sim.Time
	cb     Callbacks

	res        []*bc.BC
	vectorSent bool
	inVector   map[int]bool
	myReports  map[int]*Report
	lateSent   map[int]bool

	regular map[int]map[int]*Report
	anyOK   map[int]map[int]bool

	wefBC      *bc.BC
	wef        *WEF
	wefRegular bool
	accepted   bool

	baInst *ba.BA
	baOut  *uint8

	starAcast *acast.Acast
	starOut   bool
	starMsg   *graph.Star
	starOK    bool
}

// NewCore wires up the shared machinery. slot is the structural time of
// the result-vector broadcast; the (W,E,F) broadcast is anchored at
// slot+TBC and the acceptance ΠBA at slot+2TBC.
func NewCore(rt *proto.Runtime, inst string, dealer int, cfg proto.Config, coin aba.CoinSource, slot sim.Time, cb Callbacks) *Core {
	c := &Core{
		rt:        rt,
		inst:      inst,
		dealer:    dealer,
		cfg:       cfg,
		tb:        timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds),
		slot:      slot,
		cb:        cb,
		res:       make([]*bc.BC, cfg.N+1),
		inVector:  make(map[int]bool),
		myReports: make(map[int]*Report),
		lateSent:  make(map[int]bool),
		regular:   make(map[int]map[int]*Report),
		anyOK:     make(map[int]map[int]bool),
	}
	n := cfg.N
	for i := 1; i <= n; i++ {
		i := i
		c.res[i] = bc.New(rt, proto.Join(inst, "res", fmt.Sprint(i)), i, cfg.Ts, cfg.Delta, slot,
			func(m []byte) { c.handleVector(i, m, true) },
			func(m []byte) { c.handleVector(i, m, false) })
		if cfg.SyncOnly {
			c.res[i].DisableFallback()
		}
	}
	latePrefix := proto.Join(inst, "late") + "/"
	rt.RegisterPrefix(latePrefix, func(path string) proto.Handler {
		var i, j int
		if _, err := fmt.Sscanf(path[len(latePrefix):], "%d/%d", &i, &j); err != nil {
			return nil
		}
		if i < 1 || i > n || j < 1 || j > n || rt.Registered(path) {
			return nil
		}
		acast.New(rt, path, i, cfg.Ts, func(m []byte) { c.handleLate(i, j, m) })
		return nil // acast.New self-registers
	})
	c.wefBC = bc.New(rt, proto.Join(inst, "wef"), dealer, cfg.Ts, cfg.Delta, slot+c.tb.BC,
		func(m []byte) { c.handleWEF(m, true) },
		func(m []byte) { c.handleWEF(m, false) })
	if cfg.SyncOnly {
		c.wefBC.DisableFallback()
	}
	c.starAcast = acast.New(rt, proto.Join(inst, "star"), dealer, cfg.Ts, func(m []byte) { c.handleStarMsg(m) })
	c.baInst = ba.New(rt, proto.Join(inst, "ba"), cfg.Ts, cfg.Delta, slot+2*c.tb.BC, coin,
		func(v uint8) { c.handleBA(v) })

	rt.AtProcessing(slot, func() { c.sendVector() })
	if rt.ID() == dealer {
		rt.AtProcessing(slot+c.tb.BC, func() { c.dealerWEF() })
	}
	rt.AtProcessing(slot+2*c.tb.BC, func() { c.evaluateAcceptance() })
	return c
}

// SetReport records this party's check result about j; results known
// by the slot go into the vector, later ones are Acast late.
func (c *Core) SetReport(j int, rep *Report) {
	if _, have := c.myReports[j]; have || rep == nil {
		return
	}
	c.myReports[j] = rep
	if c.cfg.SyncOnly {
		return // no late announcements in the synchronous baseline
	}
	if c.vectorSent && !c.inVector[j] && !c.lateSent[j] {
		c.lateSent[j] = true
		me := c.rt.ID()
		path := proto.Join(c.inst, "late", fmt.Sprint(me), fmt.Sprint(j))
		if c.rt.Registered(path) {
			return
		}
		a := acast.New(c.rt, path, me, c.cfg.Ts, func(m []byte) { c.handleLate(me, j, m) })
		a.Broadcast(EncodeReport(rep))
	}
}

// BAOutput returns the acceptance ΠBA's decision, if made: 0 means some
// honest party accepted a (W,E,F), 1 selects the (n,ta)-star path.
func (c *Core) BAOutput() (uint8, bool) {
	if c.baOut == nil {
		return 0, false
	}
	return *c.baOut, true
}

// WEFMsg returns the dealer's (W,E,F), whether it arrived at all and
// whether it arrived through regular mode.
func (c *Core) WEFMsg() (*WEF, bool) { return c.wef, c.wef != nil }

// Star returns the dealer's (E',F') once it has become a valid
// (n,ta)-star in this party's graph.
func (c *Core) Star() (*graph.Star, bool) {
	if c.starOK {
		return c.starMsg, true
	}
	return nil, false
}

func (c *Core) sendVector() {
	if c.vectorSent {
		return
	}
	c.vectorSent = true
	wr := wire.NewWriter()
	for j := 1; j <= c.cfg.N; j++ {
		if rep := c.myReports[j]; rep != nil {
			c.inVector[j] = true
			wr.Blob(EncodeReport(rep))
		} else {
			wr.Blob(wire.NewWriter().Uint(uint64(tagNone)).Bytes())
		}
	}
	c.res[c.rt.ID()].Broadcast(wr.Bytes())
}

func (c *Core) recordReport(i, j int, rep *Report, reg bool) {
	if rep == nil {
		return
	}
	if reg {
		m := c.regular[i]
		if m == nil {
			m = make(map[int]*Report)
			c.regular[i] = m
		}
		if _, dup := m[j]; !dup {
			m[j] = rep
		}
	}
	if rep.OK {
		m := c.anyOK[i]
		if m == nil {
			m = make(map[int]bool)
			c.anyOK[i] = m
		}
		m[j] = true
	}
}

func (c *Core) handleVector(i int, body []byte, regular bool) {
	if body == nil {
		return
	}
	r := wire.NewReader(body)
	reps := make([]*Report, 0, c.cfg.N)
	for j := 1; j <= c.cfg.N; j++ {
		sub := wire.NewReader(r.Blob())
		if r.Err() != nil {
			return
		}
		rep, ok := decodeReport(sub)
		if !ok {
			return
		}
		reps = append(reps, rep)
	}
	if r.Done() != nil {
		return
	}
	for j := 1; j <= c.cfg.N; j++ {
		c.recordReport(i, j, reps[j-1], regular)
	}
	c.onGraphUpdate()
}

func (c *Core) handleLate(i, j int, body []byte) {
	rep, ok := decodeReport(wire.NewReader(body))
	if !ok || rep == nil {
		return
	}
	c.recordReport(i, j, rep, false)
	c.onGraphUpdate()
}

func (c *Core) edgeAny(i, j int) bool { return c.anyOK[i][j] && c.anyOK[j][i] }
func (c *Core) edgeRegular(i, j int) bool {
	ri, rj := c.regular[i][j], c.regular[j][i]
	return ri != nil && ri.OK && rj != nil && rj.OK
}

// AnyGraph materialises the monotone consistency graph.
func (c *Core) AnyGraph() *graph.Graph {
	g := graph.New(c.cfg.N)
	for i := 1; i <= c.cfg.N; i++ {
		for j := i + 1; j <= c.cfg.N; j++ {
			if c.edgeAny(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func (c *Core) regularGraph() *graph.Graph {
	g := graph.New(c.cfg.N)
	for i := 1; i <= c.cfg.N; i++ {
		for j := i + 1; j <= c.cfg.N; j++ {
			if c.edgeRegular(i, j) {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// dealerWEF runs the dealer's phase IV at slot + TBC.
func (c *Core) dealerWEF() {
	g := c.regularGraph()
	if c.cb.VerifyNOK != nil {
		for i := 1; i <= c.cfg.N; i++ {
			for j, rep := range c.regular[i] {
				if rep.OK {
					continue
				}
				if !c.cb.VerifyNOK(i, j, rep.NokIdx, rep.NokVal) {
					g.RemoveVertexEdges(i)
					break
				}
			}
		}
	}
	var members []int
	for i := 1; i <= c.cfg.N; i++ {
		if g.Degree(i)+1 >= c.cfg.N-c.cfg.Ts {
			members = append(members, i)
		}
	}
	for {
		var keep []int
		for _, i := range members {
			if g.DegreeWithin(i, members)+1 >= c.cfg.N-c.cfg.Ts {
				keep = append(keep, i)
			}
		}
		if len(keep) == len(members) {
			break
		}
		members = keep
	}
	if len(members) == 0 {
		return
	}
	star, ok := g.FindStar(members, c.cfg.N, c.cfg.Ts)
	if !ok {
		return
	}
	c.wefBC.Broadcast(wire.NewWriter().Ints(members).Ints(star.E).Ints(star.F).Bytes())
}

func parseWEF(body []byte, n int) (*WEF, bool) {
	r := wire.NewReader(body)
	wSet := r.Ints()
	e := r.Ints()
	f := r.Ints()
	if r.Done() != nil {
		return nil, false
	}
	distinct := func(vs []int) (map[int]bool, bool) {
		seen := map[int]bool{}
		for _, v := range vs {
			if v < 1 || v > n || seen[v] {
				return nil, false
			}
			seen[v] = true
		}
		return seen, true
	}
	inW, ok := distinct(wSet)
	if !ok {
		return nil, false
	}
	inF, ok := distinct(f)
	if !ok {
		return nil, false
	}
	if _, ok := distinct(e); !ok {
		return nil, false
	}
	for _, v := range f {
		if !inW[v] {
			return nil, false // F ⊆ W
		}
	}
	for _, v := range e {
		if !inF[v] {
			return nil, false // E ⊆ F
		}
	}
	return &WEF{W: wSet, Star: graph.Star{E: e, F: f}}, true
}

func (c *Core) handleWEF(body []byte, regular bool) {
	if body == nil {
		return
	}
	msg, ok := parseWEF(body, c.cfg.N)
	if !ok {
		return
	}
	if c.wef == nil {
		c.wef = msg
		c.wefRegular = regular
	}
	c.fire()
}

func (c *Core) evaluateAcceptance() {
	c.accepted = c.checkAcceptance()
	input := uint8(1)
	if c.accepted {
		input = 0
	}
	c.baInst.Start(input)
}

// checkAcceptance evaluates the acceptance conditions on the
// regular-mode data (all of which landed at exactly slot + TBC, resp.
// slot + 2TBC for the (W,E,F) itself).
func (c *Core) checkAcceptance() bool {
	if c.wef == nil || !c.wefRegular {
		return false
	}
	msg := c.wef
	n, ts := c.cfg.N, c.cfg.Ts
	for _, j := range msg.W {
		for _, k := range msg.W {
			if j >= k {
				continue
			}
			rj, rk := c.regular[j][k], c.regular[k][j]
			if rj != nil && rk != nil && !rj.OK && !rk.OK &&
				rj.NokIdx == rk.NokIdx && rj.NokVal != rk.NokVal {
				return false
			}
		}
	}
	g := c.regularGraph()
	for _, j := range msg.W {
		if g.Degree(j)+1 < n-ts {
			return false
		}
		if g.DegreeWithin(j, msg.W)+1 < n-ts {
			return false
		}
	}
	return msg.Star.Validate(g, n, ts)
}

func (c *Core) handleBA(v uint8) {
	c.baOut = &v
	if v == 1 && c.rt.ID() == c.dealer {
		c.dealerStarSearch()
	}
	c.recheckStar()
	c.fire()
}

func (c *Core) dealerStarSearch() {
	if c.starOut || c.cfg.SyncOnly {
		return // the (n,ta)-star branch is the asynchronous fallback
	}
	g := c.AnyGraph()
	verts := make([]int, c.cfg.N)
	for i := range verts {
		verts[i] = i + 1
	}
	star, ok := g.FindStar(verts, c.cfg.N, c.cfg.Ta)
	if !ok {
		return
	}
	c.starOut = true
	c.starAcast.Broadcast(wire.NewWriter().Ints(star.E).Ints(star.F).Bytes())
}

func (c *Core) handleStarMsg(body []byte) {
	r := wire.NewReader(body)
	e := r.Ints()
	f := r.Ints()
	if r.Done() != nil {
		return
	}
	inF := map[int]bool{}
	for _, v := range f {
		if v < 1 || v > c.cfg.N || inF[v] {
			return
		}
		inF[v] = true
	}
	for _, v := range e {
		if !inF[v] {
			return
		}
	}
	if c.starMsg == nil {
		c.starMsg = &graph.Star{E: e, F: f}
	}
	c.recheckStar()
	c.fire()
}

// recheckStar re-validates the pending (E',F') against the current
// graph; stars only become valid (edges are monotone).
func (c *Core) recheckStar() {
	if c.starOK || c.starMsg == nil || c.baOut == nil || *c.baOut != 1 {
		return
	}
	if c.starMsg.Validate(c.AnyGraph(), c.cfg.N, c.cfg.Ta) {
		c.starOK = true
	}
}

func (c *Core) onGraphUpdate() {
	if c.baOut != nil && *c.baOut == 1 && c.rt.ID() == c.dealer {
		c.dealerStarSearch()
	}
	c.recheckStar()
	c.fire()
}

func (c *Core) fire() {
	if c.cb.OnUpdate != nil {
		c.cb.OnUpdate()
	}
}
