package consist

import (
	"testing"

	"repro/field"
	"repro/internal/wire"
)

func TestReportEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*Report{
		{OK: true},
		{OK: false, NokIdx: 0, NokVal: field.New(7)},
		{OK: false, NokIdx: 12, NokVal: field.New(0)},
	}
	for _, rep := range cases {
		got, ok := decodeReport(wire.NewReader(EncodeReport(rep)))
		if !ok || got == nil {
			t.Fatalf("decode failed for %+v", rep)
		}
		if got.OK != rep.OK || got.NokIdx != rep.NokIdx || got.NokVal != rep.NokVal {
			t.Fatalf("round trip %+v -> %+v", rep, got)
		}
	}
	// tagNone decodes to a nil report without error.
	none := wire.NewWriter().Uint(uint64(tagNone)).Bytes()
	got, ok := decodeReport(wire.NewReader(none))
	if !ok || got != nil {
		t.Fatal("tagNone mishandled")
	}
	// Unknown tags and truncated NOKs are rejected.
	if _, ok := decodeReport(wire.NewReader([]byte{9})); ok {
		t.Fatal("unknown tag accepted")
	}
	trunc := wire.NewWriter().Uint(uint64(tagNOK)).Int(3).Bytes() // missing value
	if _, ok := decodeReport(wire.NewReader(trunc)); ok {
		t.Fatal("truncated NOK accepted")
	}
	if _, ok := decodeReport(wire.NewReader(nil)); ok {
		t.Fatal("empty report accepted")
	}
}

func TestParseWEFValidation(t *testing.T) {
	const n = 8
	enc := func(w, e, f []int) []byte {
		return wire.NewWriter().Ints(w).Ints(e).Ints(f).Bytes()
	}
	good := enc([]int{1, 2, 3, 4, 5, 6}, []int{1, 2, 3, 4}, []int{1, 2, 3, 4, 5, 6})
	msg, ok := parseWEF(good, n)
	if !ok || len(msg.W) != 6 || len(msg.Star.E) != 4 {
		t.Fatalf("valid WEF rejected: %+v %v", msg, ok)
	}
	bad := [][]byte{
		enc([]int{1, 2}, []int{3}, []int{3}),       // F ⊄ W
		enc([]int{1, 2, 3}, []int{3}, []int{1, 2}), // E ⊄ F
		enc([]int{1, 1, 2}, []int{1}, []int{1}),    // duplicate in W
		enc([]int{0, 1}, []int{1}, []int{1}),       // out of range
		enc([]int{1, 99}, []int{1}, []int{1}),      // out of range
		{0xff, 0xff},                               // malformed
		append(good, 0x00),                         // trailing garbage
	}
	for i, b := range bad {
		if _, ok := parseWEF(b, n); ok {
			t.Errorf("bad WEF %d accepted", i)
		}
	}
}
