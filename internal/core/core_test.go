package core

import (
	"math/rand/v2"
	"testing"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
)

func cfg5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

type harness struct {
	w       *proto.World
	engines []*CirEval
	outs    [][]field.Element
	outAt   []sim.Time
}

func newHarness(w *proto.World, circ *circuit.Circuit, seed uint64) *harness {
	h := &harness{
		w:       w,
		engines: make([]*CirEval, w.Cfg.N+1),
		outs:    make([][]field.Element, w.Cfg.N+1),
		outAt:   make([]sim.Time, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.engines[i] = New(w.Runtimes[i], "mpc", circ, w.Cfg, coin, 0, func(out []field.Element) {
			h.outs[i] = out
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func (h *harness) start(inputs []field.Element, skip map[int]bool) {
	for i := 1; i <= h.w.Cfg.N; i++ {
		if skip[i] {
			continue
		}
		h.engines[i].Start(inputs[i-1])
	}
}

// verify checks all honest parties terminated with the clear-circuit
// evaluation on the agreed CS.
func (h *harness) verify(t *testing.T, circ *circuit.Circuit, inputs []field.Element) {
	t.Helper()
	var cs []int
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil {
			t.Fatalf("honest party %d did not terminate", i)
		}
		if cs == nil {
			cs = h.engines[i].CS()
		}
	}
	adjusted := make([]field.Element, len(inputs))
	inCS := map[int]bool{}
	for _, j := range cs {
		inCS[j] = true
	}
	for i := range inputs {
		if inCS[i+1] {
			adjusted[i] = inputs[i]
		}
	}
	want, err := circ.Eval(adjusted)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) || h.outs[i] == nil {
			continue
		}
		for k := range want {
			if h.outs[i][k] != want[k] {
				t.Fatalf("party %d output %v, want %v (CS=%v)", i, h.outs[i], want, cs)
			}
		}
	}
}

func inputs5() []field.Element {
	return []field.Element{field.New(3), field.New(1), field.New(4), field.New(1), field.New(5)}
}

func TestCrashMidProtocol(t *testing.T) {
	// Party 4 crashes partway through preprocessing (after ~TVSS): the
	// remaining parties must still terminate correctly in sync.
	c := cfg5()
	crashTime := sim.Time(600)
	ctrl := adversary.NewController().Set(4, adversary.CrashAt(crashTime))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 3, Corrupt: []int{4}, Interceptor: ctrl,
	})
	circ := circuit.Product(5)
	h := newHarness(w, circ, 3)
	h.start(inputs5(), nil)
	w.RunToQuiescence()
	h.verify(t, circ, inputs5())
}

func TestCrashAtVariousPoints(t *testing.T) {
	// Sweep the crash time across protocol phases; liveness and
	// correctness must hold at every point.
	c := cfg5()
	circ := circuit.Sum(5)
	for _, crash := range []sim.Time{5, 150, 400, 900, 1200} {
		ctrl := adversary.NewController().Set(2, adversary.CrashAt(crash))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: uint64(crash), Corrupt: []int{2}, Interceptor: ctrl,
		})
		h := newHarness(w, circ, uint64(crash))
		h.start(inputs5(), nil)
		w.RunToQuiescence()
		h.verify(t, circ, inputs5())
	}
}

func TestAsyncStarvationFullRun(t *testing.T) {
	// One corrupt garbler plus an adversarial schedule starving party
	// 1's outgoing links: the BoBW engine must still terminate.
	c := cfg5()
	ctrl := adversary.NewController().Set(5, adversary.GarbleMatching(func(string) bool { return true }))
	pol := sim.StarvePolicy{
		Base:   sim.AsyncPolicy{Delta: c.Delta},
		Until:  5000,
		Starve: func(from, to int) bool { return from == 1 },
	}
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Async, Policy: pol, Seed: 4, Corrupt: []int{5}, Interceptor: ctrl,
	})
	circ := circuit.Sum(5)
	h := newHarness(w, circ, 4)
	h.start(inputs5(), nil)
	w.RunToQuiescence()
	h.verify(t, circ, inputs5())
}

func TestReadySpamCannotForceWrongOutput(t *testing.T) {
	// The corrupt party spams (ready, y') votes for a wrong output.
	// With only ts = 1 corruption, the 2ts+1 threshold can never be
	// met for y', and honest parties terminate with the true output.
	c := cfg5()
	spam := func(env sim.Envelope) []byte {
		// A well-formed ready body for output [999].
		return []byte{1, 0, 0, 0, 0, 0, 0, 3, 231}
	}
	ctrl := adversary.NewController().Set(3, adversary.Mutate(adversary.MutateSpec{
		Match:   func(env sim.Envelope) bool { return env.Inst == "mpc" },
		Rewrite: spam,
	}))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 5, Corrupt: []int{3}, Interceptor: ctrl,
	})
	circ := circuit.Sum(5)
	h := newHarness(w, circ, 5)
	h.start(inputs5(), nil)
	w.RunToQuiescence()
	h.verify(t, circ, inputs5())
	for i := 1; i <= 5; i++ {
		if i == 3 || h.outs[i] == nil {
			continue
		}
		if h.outs[i][0] == field.New(999) {
			t.Fatal("ready spam forced a wrong output")
		}
	}
}

func TestSyncDeadlineHolds(t *testing.T) {
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 6})
	circ := circuit.Product(5)
	h := newHarness(w, circ, 6)
	h.start(inputs5(), nil)
	w.RunToQuiescence()
	h.verify(t, circ, inputs5())
	bound := Deadline(c, circ.MulDepth)
	for i := 1; i <= 5; i++ {
		if h.outAt[i] > bound {
			t.Fatalf("party %d terminated at %d > TCirEval = %d", i, h.outAt[i], bound)
		}
	}
	// Our derived bound is far below the paper's (which assumed the
	// recursive BGP constants) — sanity-check the relation.
	if bound >= PaperDeadline(c, circ.MulDepth) {
		t.Fatalf("derived bound %d not below paper bound %d", bound, PaperDeadline(c, circ.MulDepth))
	}
}

func TestLinearOnlyCircuitSkipsPreprocessing(t *testing.T) {
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 7})
	circ := circuit.Sum(5)
	h := newHarness(w, circ, 7)
	h.start(inputs5(), nil)
	w.RunToQuiescence()
	h.verify(t, circ, inputs5())
	if h.engines[1].preproc != nil {
		t.Fatal("preprocessing instantiated for a multiplication-free circuit")
	}
}

func TestTwoIndependentEvaluations(t *testing.T) {
	// Two engines side by side under distinct instance paths must not
	// interfere (instance isolation).
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 8})
	coin := aba.DefaultCoin(8)
	sumOuts := make([][]field.Element, 6)
	prodOuts := make([][]field.Element, 6)
	var sums, prods [6]*CirEval
	for i := 1; i <= 5; i++ {
		i := i
		sums[i] = New(w.Runtimes[i], "a", circuit.Sum(5), c, coin, 0, func(out []field.Element) { sumOuts[i] = out })
		prods[i] = New(w.Runtimes[i], "b", circuit.Product(5), c, coin, 0, func(out []field.Element) { prodOuts[i] = out })
	}
	in := inputs5()
	for i := 1; i <= 5; i++ {
		sums[i].Start(in[i-1])
		prods[i].Start(in[i-1])
	}
	w.RunToQuiescence()
	for i := 1; i <= 5; i++ {
		if sumOuts[i] == nil || prodOuts[i] == nil {
			t.Fatalf("party %d missing outputs", i)
		}
		if sumOuts[i][0] != field.New(14) {
			t.Fatalf("sum = %v, want 14", sumOuts[i][0])
		}
		if prodOuts[i][0] != field.New(60) {
			t.Fatalf("product = %v, want 60", prodOuts[i][0])
		}
	}
}

func TestRandomCircuitsMatchClearEvaluation(t *testing.T) {
	// Property-style: random small circuits evaluated under MPC match
	// the clear evaluator.
	c := cfg5()
	for trial := 0; trial < 3; trial++ {
		r := rand.New(rand.NewPCG(uint64(trial), 99))
		b := circuit.NewBuilder(5)
		wires := make([]circuit.Wire, 0, 16)
		for i := 1; i <= 5; i++ {
			wires = append(wires, b.Input(i))
		}
		for k := 0; k < 6; k++ {
			a := wires[r.IntN(len(wires))]
			bb := wires[r.IntN(len(wires))]
			switch r.IntN(4) {
			case 0:
				wires = append(wires, b.Add(a, bb))
			case 1:
				wires = append(wires, b.Sub(a, bb))
			case 2:
				wires = append(wires, b.Mul(a, bb))
			case 3:
				wires = append(wires, b.MulConst(a, field.Random(r)))
			}
		}
		b.Output(wires[len(wires)-1])
		circ := b.Build()

		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: uint64(trial)})
		h := newHarness(w, circ, uint64(trial))
		in := make([]field.Element, 5)
		for i := range in {
			in[i] = field.Random(r)
		}
		h.start(in, nil)
		w.RunToQuiescence()
		h.verify(t, circ, in)
	}
}
