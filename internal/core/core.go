// Package core implements ΠCirEval (Fig 11, Theorem 7.1): the paper's
// best-of-both-worlds perfectly-secure circuit-evaluation protocol.
//
// Four phases:
//
//  1. Preprocessing and input sharing. ΠPreProcessing generates cM
//     random ts-shared multiplication triples while, in parallel, every
//     party ts-shares its input through a ΠACS instance. The agreed set
//     CS (⊇ all honest parties in a synchronous network) fixes whose
//     inputs enter the computation; inputs of parties outside CS
//     default to 0.
//  2. Shared circuit evaluation. Linear gates are local; each
//     multiplication gate consumes one preprocessed triple via ΠBeaver.
//     Independent multiplications at one depth run in parallel, so the
//     evaluation adds DM·Δ to the schedule.
//  3. Output. The shared outputs are publicly reconstructed with OEC.
//  4. Termination à la Bracha: (ready, y) from ts+1 parties is adopted,
//     2ts+1 terminate the protocol.
//
// The circuit is evaluated once — the paper's headline difference from
// the generic run-both-protocols compilers of [17,19,30].
package core

import (
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/triples"
	"repro/internal/wire"
	"repro/poly"
)

// msgReady carries the (ready, y) termination votes.
const msgReady uint8 = 1

// Deadline returns TCirEval - T0 = TTripGen + (DM + 2)·Δ for a circuit
// of multiplicative depth dm.
func Deadline(cfg proto.Config, dm int) sim.Time {
	return triples.PreprocessingDeadline(cfg) + sim.Time(dm+2)*cfg.Delta
}

// PaperDeadline returns the paper's (120n + DM + 6k - 20)·Δ for
// comparison in EXPERIMENTS.md.
func PaperDeadline(cfg proto.Config, dm int) sim.Time {
	return timing.PaperCirEval(cfg.N, dm, cfg.CoinRounds, cfg.Delta)
}

// CirEval is one party's instance of the MPC engine.
type CirEval struct {
	rt    *proto.Runtime
	inst  string
	cfg   proto.Config
	circ  *circuit.Circuit
	start sim.Time

	inputACS *acs.ACS
	preproc  *triples.Preprocessing

	cs       []int
	inShares map[int][]field.Element
	trips    []triples.Triple

	beavers  []*triples.Beaver // per MulIndex
	wires    []*field.Element  // this party's share per wire
	resolved int

	outRecon *triples.Recon

	readyFrom map[string]map[int]bool
	sentReady bool

	evalStarted bool
	terminated  bool
	output      []field.Element
	onOutput    func([]field.Element)
}

// New registers a ΠCirEval instance anchored at start; the party calls
// Start with its private input there. onOutput fires once, at
// termination, with the public circuit outputs.
func New(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, coin aba.CoinSource, start sim.Time, onOutput func([]field.Element)) *CirEval {
	if circ.N != cfg.N {
		panic(fmt.Sprintf("core: circuit has %d input slots, config has %d parties", circ.N, cfg.N))
	}
	e := &CirEval{
		rt:        rt,
		inst:      inst,
		cfg:       cfg,
		circ:      circ,
		start:     start,
		inShares:  make(map[int][]field.Element),
		beavers:   make([]*triples.Beaver, circ.MulCount),
		wires:     make([]*field.Element, len(circ.Gates)),
		readyFrom: make(map[string]map[int]bool),
		onOutput:  onOutput,
	}
	rt.Register(inst, e)
	e.inputACS = acs.New(rt, proto.Join(inst, "in"), 1, cfg, coin, start,
		func(cs []int, shares map[int][]field.Element) {
			e.cs = cs
			e.inShares = shares
			e.tryEvaluate()
		})
	cM := circ.MulCount
	if cM > 0 {
		e.preproc = triples.NewPreprocessing(rt, proto.Join(inst, "pp"), cM, cfg, coin, start,
			func(ts []triples.Triple) {
				e.trips = ts
				e.tryEvaluate()
			})
	}
	for k := 0; k < cM; k++ {
		k := k
		e.beavers[k] = triples.NewBeaver(rt, proto.Join(inst, "mul", fmt.Sprint(k)), cfg, func(z field.Element) {
			e.onMul(k, z)
		})
	}
	e.outRecon = triples.NewRecon(rt, proto.Join(inst, "out"), cfg, len(circ.Outputs),
		func(vals []field.Element) { e.onReconstructed(vals) })
	return e
}

// Start shares this party's private input. Honest parties call it at
// the structural start time.
func (e *CirEval) Start(input field.Element) {
	e.inputACS.Start([]poly.Poly{poly.Random(e.rt.Rand(), e.cfg.Ts, input)})
	if e.preproc != nil {
		e.preproc.Start()
	}
}

// Terminated reports whether this party has terminated with an output.
func (e *CirEval) Terminated() bool { return e.terminated }

// Output returns the public circuit outputs; valid after Terminated.
func (e *CirEval) Output() []field.Element { return e.output }

// CS returns the agreed input provider set.
func (e *CirEval) CS() []int { return e.cs }

// tryEvaluate begins gate evaluation once inputs and triples are in.
func (e *CirEval) tryEvaluate() {
	if e.evalStarted || e.cs == nil {
		return
	}
	if e.circ.MulCount > 0 && e.trips == nil {
		return
	}
	e.evalStarted = true
	e.sweep()
}

// shareOfInput returns this party's share of P_j's input: the ACS share
// if j ∈ CS, the default 0-sharing otherwise.
func (e *CirEval) shareOfInput(j int) field.Element {
	if s, ok := e.inShares[j]; ok {
		return s[0]
	}
	return field.Zero
}

// sweep evaluates every gate whose operands are resolved, starting
// Beaver instances for ready multiplication gates.
func (e *CirEval) sweep() {
	progress := true
	for progress {
		progress = false
		for idx, g := range e.circ.Gates {
			if e.wires[idx] != nil {
				continue
			}
			var v field.Element
			switch g.Op {
			case circuit.OpInput:
				v = e.shareOfInput(g.Arg)
			case circuit.OpConst:
				// A public constant is "shared" by the constant
				// polynomial: every party's share is the constant.
				v = g.Const
			case circuit.OpAdd:
				a, b := e.wires[g.A], e.wires[g.B]
				if a == nil || b == nil {
					continue
				}
				v = a.Add(*b)
			case circuit.OpSub:
				a, b := e.wires[g.A], e.wires[g.B]
				if a == nil || b == nil {
					continue
				}
				v = a.Sub(*b)
			case circuit.OpAddConst:
				a := e.wires[g.A]
				if a == nil {
					continue
				}
				v = a.Add(g.Const)
			case circuit.OpMulConst:
				a := e.wires[g.A]
				if a == nil {
					continue
				}
				v = a.Mul(g.Const)
			case circuit.OpMul:
				a, b := e.wires[g.A], e.wires[g.B]
				if a == nil || b == nil {
					continue
				}
				// Start the Beaver instance once (Start is idempotent);
				// its completion resolves this wire.
				tr := e.trips[g.MulIndex]
				e.beavers[g.MulIndex].Start(*a, *b, tr.X, tr.Y, tr.Z)
				continue
			}
			vv := v
			e.wires[idx] = &vv
			e.resolved++
			progress = true
		}
	}
	e.maybeOutputPhase()
}

func (e *CirEval) onMul(k int, z field.Element) {
	for idx, g := range e.circ.Gates {
		if g.Op == circuit.OpMul && g.MulIndex == k && e.wires[idx] == nil {
			zz := z
			e.wires[idx] = &zz
			e.resolved++
		}
	}
	e.sweep()
}

// maybeOutputPhase starts public output reconstruction when every
// output wire's share is resolved.
func (e *CirEval) maybeOutputPhase() {
	shares := make([]field.Element, len(e.circ.Outputs))
	for i, w := range e.circ.Outputs {
		if e.wires[w] == nil {
			return
		}
		shares[i] = *e.wires[w]
	}
	e.outRecon.Start(shares)
}

func (e *CirEval) onReconstructed(vals []field.Element) {
	if e.sentReady {
		return
	}
	e.sentReady = true
	e.rt.SendAll(e.inst, msgReady, wire.NewWriterCap(2+8*len(vals)).Elements(vals).Bytes())
}

// Deliver implements proto.Handler: the Bracha-style termination vote.
func (e *CirEval) Deliver(from int, msgType uint8, body []byte) {
	if msgType != msgReady || e.terminated {
		return
	}
	r := wire.NewReader(body)
	vals := r.Elements()
	if r.Done() != nil || len(vals) != len(e.circ.Outputs) {
		return
	}
	key := string(body)
	set := e.readyFrom[key]
	if set == nil {
		set = make(map[int]bool)
		e.readyFrom[key] = set
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) >= e.cfg.Ts+1 && !e.sentReady {
		e.sentReady = true
		e.rt.SendAll(e.inst, msgReady, body)
	}
	if len(set) >= 2*e.cfg.Ts+1 {
		e.terminated = true
		e.output = vals
		if e.onOutput != nil {
			e.onOutput(vals)
		}
	}
}
