// Package core implements ΠCirEval (Fig 11, Theorem 7.1): the paper's
// best-of-both-worlds perfectly-secure circuit-evaluation protocol.
//
// Four phases:
//
//  1. Preprocessing and input sharing. ΠPreProcessing generates cM
//     random ts-shared multiplication triples while, in parallel, every
//     party ts-shares its input through a ΠACS instance. The agreed set
//     CS (⊇ all honest parties in a synchronous network) fixes whose
//     inputs enter the computation; inputs of parties outside CS
//     default to 0.
//  2. Shared circuit evaluation. Linear gates are local; each
//     multiplication gate consumes one preprocessed triple via ΠBeaver.
//     Independent multiplications at one depth run in parallel and
//     share one batched reconstruction (triples.BatchBeaver), so the
//     evaluation adds DM·Δ to the schedule and DM — not cM —
//     reconstruction instances to the traffic.
//  3. Output. The shared outputs are publicly reconstructed with OEC.
//  4. Termination à la Bracha: (ready, y) from ts+1 parties is adopted,
//     2ts+1 terminate the protocol.
//
// The circuit is evaluated once — the paper's headline difference from
// the generic run-both-protocols compilers of [17,19,30].
//
// Two evaluator implementations exist. The default EvalLayered walks
// the circuit with a dependency-counting worklist: every wire is
// visited O(1) times, and each multiplicative layer's Beaver batch
// starts exactly when the layer's last operand resolves. EvalPerGate
// is the pre-batching reference — one Beaver instance (and one
// 2-element reconstruction) per gate, resolved by a quadratic
// fixed-point sweep — retained for differential testing: both modes
// compute bit-for-bit identical shares.
package core

import (
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/triples"
	"repro/internal/wire"
	"repro/poly"
)

// msgReady carries the (ready, y) termination votes.
const msgReady uint8 = 1

// EvalMode selects the online-phase evaluator implementation.
type EvalMode uint8

// Evaluator modes.
const (
	// EvalLayered batches all multiplications of one multiplicative
	// layer through a single reconstruction instance and resolves wires
	// with a dependency-count worklist (the default).
	EvalLayered EvalMode = iota
	// EvalPerGate spawns one Beaver instance per multiplication gate —
	// the reference path kept for differential testing.
	EvalPerGate
)

// Deadline returns TCirEval - T0 = TTripGen + (DM + 2)·Δ for a circuit
// of multiplicative depth dm.
func Deadline(cfg proto.Config, dm int) sim.Time {
	return triples.PreprocessingDeadline(cfg) + sim.Time(dm+2)*cfg.Delta
}

// PaperDeadline returns the paper's (120n + DM + 6k - 20)·Δ for
// comparison in EXPERIMENTS.md.
func PaperDeadline(cfg proto.Config, dm int) sim.Time {
	return timing.PaperCirEval(cfg.N, dm, cfg.CoinRounds, cfg.Delta)
}

// SessionDeadline returns the synchronous bound of one engine session
// relative to its start: TACS + (DM + 2)·Δ. A session's triples come
// pre-generated from a pool, so the input ΠACS — not ΠPreProcessing —
// is the session's slowest agreement component.
func SessionDeadline(cfg proto.Config, dm int) sim.Time {
	return acs.Deadline(cfg) + sim.Time(dm+2)*cfg.Delta
}

// CirEval is one party's instance of the MPC engine.
type CirEval struct {
	rt    *proto.Runtime
	inst  string
	cfg   proto.Config
	circ  *circuit.Circuit
	start sim.Time
	mode  EvalMode

	inputACS *acs.ACS
	preproc  *triples.Preprocessing

	cs       []int
	inShares map[int][]field.Element
	trips    []triples.Triple

	// Wire state shared by both evaluator modes.
	wires    []field.Element
	haveWire []bool

	// EvalPerGate state: one Beaver per MulIndex.
	beavers []*triples.Beaver

	// EvalLayered state: the dependency-count worklist plus one
	// BatchBeaver per multiplicative layer.
	layers       [][]circuit.Wire       // layer d at index d-1
	batches      []*triples.BatchBeaver // parallel to layers
	deps         []int32                // unresolved operand count per gate
	consumers    [][]int32              // gates consuming each wire
	layerPending []int                  // not-yet-ready mul gates per layer

	outRecon *triples.Recon

	readyFrom map[string]map[int]bool
	sentReady bool

	evalStarted bool
	terminated  bool
	output      []field.Element
	onOutput    func([]field.Element)
}

// New registers a ΠCirEval instance anchored at start with the default
// layered evaluator; the party calls Start with its private input
// there. onOutput fires once, at termination, with the public circuit
// outputs.
func New(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, coin aba.CoinSource, start sim.Time, onOutput func([]field.Element)) *CirEval {
	return NewWithMode(rt, inst, circ, cfg, coin, start, EvalLayered, onOutput)
}

// NewWithMode is New with an explicit evaluator mode. All parties of a
// run must use the same mode: the modes differ in their message
// grouping (per-layer vs per-gate reconstruction instances), not in
// the shares they compute.
func NewWithMode(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, coin aba.CoinSource, start sim.Time, mode EvalMode, onOutput func([]field.Element)) *CirEval {
	e := newEval(rt, inst, circ, cfg, start, mode, onOutput)
	e.inputACS = acs.New(rt, proto.Join(inst, "in"), 1, cfg, coin, start,
		func(cs []int, shares map[int][]field.Element) {
			e.cs = cs
			e.inShares = shares
			e.tryEvaluate()
		})
	if cM := circ.MulCount; cM > 0 {
		e.preproc = triples.NewPreprocessing(rt, proto.Join(inst, "pp"), cM, cfg, coin, start,
			func(ts []triples.Triple) {
				e.trips = ts
				e.tryEvaluate()
			})
	}
	return e
}

// NewOnline registers an online-phase-only ΠCirEval: no input ΠACS and
// no ΠPreProcessing are spawned; the caller provides input sharings,
// the agreed set and the multiplication triples directly through
// StartOnline (a trusted-dealer setup). This isolates the shared
// circuit-evaluation, output and termination phases for benchmarking
// and differential testing.
func NewOnline(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, start sim.Time, mode EvalMode, onOutput func([]field.Element)) *CirEval {
	return newEval(rt, inst, circ, cfg, start, mode, onOutput)
}

// NewSession registers a session-mode ΠCirEval: the evaluation shares
// its inputs through its own ΠACS (a real agreement round, unlike
// NewOnline's trusted dealer) but consumes an externally owned triple
// reservation — this party's shares of circ.MulCount pool triples, in
// generation order — instead of spawning a per-evaluation
// ΠPreProcessing. One amortized pool fill thus serves many sequential
// sessions on one World, each in its own epoch namespace (inst must be
// unique per session; see proto.World.BeginEpoch). The party calls
// Start with its private input at the structural start time.
func NewSession(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, coin aba.CoinSource, start sim.Time, mode EvalMode, trips []triples.Triple, onOutput func([]field.Element)) *CirEval {
	if len(trips) != circ.MulCount {
		panic(fmt.Sprintf("core: session holds %d reserved triples, circuit needs %d", len(trips), circ.MulCount))
	}
	e := newEval(rt, inst, circ, cfg, start, mode, onOutput)
	e.trips = trips
	e.inputACS = acs.New(rt, proto.Join(inst, "in"), 1, cfg, coin, start,
		func(cs []int, shares map[int][]field.Element) {
			e.cs = cs
			e.inShares = shares
			e.tryEvaluate()
		})
	return e
}

// newEval builds the evaluator core shared by the full-protocol and
// online-only constructors and registers the termination handler and
// the per-mode Beaver instances.
func newEval(rt *proto.Runtime, inst string, circ *circuit.Circuit, cfg proto.Config, start sim.Time, mode EvalMode, onOutput func([]field.Element)) *CirEval {
	if circ.N != cfg.N {
		panic(fmt.Sprintf("core: circuit has %d input slots, config has %d parties", circ.N, cfg.N))
	}
	e := &CirEval{
		rt:        rt,
		inst:      inst,
		cfg:       cfg,
		circ:      circ,
		start:     start,
		mode:      mode,
		inShares:  make(map[int][]field.Element),
		wires:     make([]field.Element, len(circ.Gates)),
		haveWire:  make([]bool, len(circ.Gates)),
		readyFrom: make(map[string]map[int]bool),
		onOutput:  onOutput,
	}
	rt.Register(inst, e)
	switch mode {
	case EvalPerGate:
		e.beavers = make([]*triples.Beaver, circ.MulCount)
		for k := range e.beavers {
			k := k
			e.beavers[k] = triples.NewBeaver(rt, proto.Join(inst, "mul", fmt.Sprint(k)), cfg, func(z field.Element) {
				e.onMul(k, z)
			})
		}
	case EvalLayered:
		e.initLayered()
	default:
		panic(fmt.Sprintf("core: unknown evaluator mode %d", mode))
	}
	e.outRecon = triples.NewRecon(rt, proto.Join(inst, "out"), cfg, len(circ.Outputs),
		func(vals []field.Element) { e.onReconstructed(vals) })
	return e
}

// initLayered builds the dependency graph (operand counts and consumer
// adjacency) and registers one BatchBeaver per multiplicative layer.
func (e *CirEval) initLayered() {
	gates := e.circ.Gates
	e.deps = make([]int32, len(gates))
	e.consumers = make([][]int32, len(gates))
	for idx, g := range gates {
		switch g.Op {
		case circuit.OpAdd, circuit.OpSub, circuit.OpMul:
			// A gate consuming the same wire twice appears twice in the
			// wire's consumer list; its count is decremented twice.
			e.deps[idx] = 2
			e.consumers[g.A] = append(e.consumers[g.A], int32(idx))
			e.consumers[g.B] = append(e.consumers[g.B], int32(idx))
		case circuit.OpAddConst, circuit.OpMulConst:
			e.deps[idx] = 1
			e.consumers[g.A] = append(e.consumers[g.A], int32(idx))
		}
	}
	e.layers = e.circ.Layers()
	e.batches = make([]*triples.BatchBeaver, len(e.layers))
	e.layerPending = make([]int, len(e.layers))
	for d, lay := range e.layers {
		if len(lay) == 0 {
			continue
		}
		d := d
		e.layerPending[d] = len(lay)
		e.batches[d] = triples.NewBatchBeaver(e.rt, proto.Join(e.inst, "lay", fmt.Sprint(d+1)), e.cfg, len(lay),
			func(zs []field.Element) { e.onLayer(d, zs) })
	}
}

// Start shares this party's private input. Honest parties call it at
// the structural start time.
func (e *CirEval) Start(input field.Element) {
	if e.inputACS == nil {
		panic("core: Start on an online-only instance (use StartOnline)")
	}
	e.inputACS.Start([]poly.Poly{poly.Random(e.rt.Rand(), e.cfg.Ts, input)})
	if e.preproc != nil {
		e.preproc.Start()
	}
}

// StartOnline begins evaluation of an online-only instance (NewOnline)
// from a trusted-dealer setup: this party's share of every provider's
// input (inShares[j][0] for j ∈ cs), the agreed provider set, and its
// shares of the cM multiplication triples in MulIndex order.
func (e *CirEval) StartOnline(inShares map[int][]field.Element, cs []int, trips []triples.Triple) {
	if e.inputACS != nil {
		panic("core: StartOnline on a full-protocol instance (use Start)")
	}
	if len(trips) != e.circ.MulCount {
		panic(fmt.Sprintf("core: StartOnline with %d triples, circuit needs %d", len(trips), e.circ.MulCount))
	}
	e.cs = cs
	e.inShares = inShares
	e.trips = trips
	e.tryEvaluate()
}

// Terminated reports whether this party has terminated with an output.
func (e *CirEval) Terminated() bool { return e.terminated }

// Output returns the public circuit outputs; valid after Terminated.
func (e *CirEval) Output() []field.Element { return e.output }

// CS returns the agreed input provider set.
func (e *CirEval) CS() []int { return e.cs }

// tryEvaluate begins gate evaluation once inputs and triples are in.
func (e *CirEval) tryEvaluate() {
	if e.evalStarted || e.cs == nil {
		return
	}
	if e.circ.MulCount > 0 && e.trips == nil {
		return
	}
	e.evalStarted = true
	switch e.mode {
	case EvalPerGate:
		e.sweep()
	case EvalLayered:
		e.seedWorklist()
	}
}

// shareOfInput returns this party's share of P_j's input: the ACS share
// if j ∈ CS, the default 0-sharing otherwise.
func (e *CirEval) shareOfInput(j int) field.Element {
	if s, ok := e.inShares[j]; ok {
		return s[0]
	}
	return field.Zero
}

// --- EvalLayered: dependency-count worklist -------------------------

// seedWorklist resolves the source gates (inputs and constants) and
// propagates through the dependency graph.
func (e *CirEval) seedWorklist() {
	stack := make([]int32, 0, len(e.circ.Gates))
	for idx, g := range e.circ.Gates {
		switch g.Op {
		case circuit.OpInput:
			stack = e.setWire(int32(idx), e.shareOfInput(g.Arg), stack)
		case circuit.OpConst:
			// A public constant is "shared" by the constant polynomial:
			// every party's share is the constant.
			stack = e.setWire(int32(idx), g.Const, stack)
		}
	}
	e.drain(stack)
}

// onLayer resolves a whole layer's product wires from the completed
// Beaver batch (zs in layer order) and continues propagation.
func (e *CirEval) onLayer(d int, zs []field.Element) {
	stack := make([]int32, 0, len(zs)+8)
	for k, w := range e.layers[d] {
		stack = e.setWire(int32(w), zs[k], stack)
	}
	e.drain(stack)
}

// setWire records a resolved wire and queues it for propagation.
func (e *CirEval) setWire(idx int32, v field.Element, stack []int32) []int32 {
	e.wires[idx] = v
	e.haveWire[idx] = true
	return append(stack, idx)
}

// drain propagates resolved wires: each consumer's operand count drops
// by one per resolved operand; a consumer reaching zero either
// evaluates locally (linear gates) or checks in with its layer (mul
// gates), starting the layer's Beaver batch when it was the last. Each
// gate is visited O(fan-in + fan-out) times overall.
func (e *CirEval) drain(stack []int32) {
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range e.consumers[w] {
			e.deps[c]--
			if e.deps[c] != 0 {
				continue
			}
			g := &e.circ.Gates[c]
			switch g.Op {
			case circuit.OpAdd:
				stack = e.setWire(c, e.wires[g.A].Add(e.wires[g.B]), stack)
			case circuit.OpSub:
				stack = e.setWire(c, e.wires[g.A].Sub(e.wires[g.B]), stack)
			case circuit.OpAddConst:
				stack = e.setWire(c, e.wires[g.A].Add(g.Const), stack)
			case circuit.OpMulConst:
				stack = e.setWire(c, e.wires[g.A].Mul(g.Const), stack)
			case circuit.OpMul:
				d := g.Depth - 1
				e.layerPending[d]--
				if e.layerPending[d] == 0 {
					e.startLayer(d)
				}
			}
		}
	}
	e.maybeOutputPhase()
}

// startLayer collects the layer's operand and triple shares in layer
// order and starts its batched Beaver instance.
func (e *CirEval) startLayer(d int) {
	lay := e.layers[d]
	xs := make([]field.Element, len(lay))
	ys := make([]field.Element, len(lay))
	trips := make([]triples.Triple, len(lay))
	for k, w := range lay {
		g := &e.circ.Gates[w]
		xs[k] = e.wires[g.A]
		ys[k] = e.wires[g.B]
		trips[k] = e.trips[g.MulIndex]
	}
	e.batches[d].Start(xs, ys, trips)
}

// --- EvalPerGate: the quadratic reference sweep ---------------------

// sweep evaluates every gate whose operands are resolved, starting
// Beaver instances for ready multiplication gates.
func (e *CirEval) sweep() {
	progress := true
	for progress {
		progress = false
		for idx, g := range e.circ.Gates {
			if e.haveWire[idx] {
				continue
			}
			var v field.Element
			switch g.Op {
			case circuit.OpInput:
				v = e.shareOfInput(g.Arg)
			case circuit.OpConst:
				v = g.Const
			case circuit.OpAdd:
				if !e.haveWire[g.A] || !e.haveWire[g.B] {
					continue
				}
				v = e.wires[g.A].Add(e.wires[g.B])
			case circuit.OpSub:
				if !e.haveWire[g.A] || !e.haveWire[g.B] {
					continue
				}
				v = e.wires[g.A].Sub(e.wires[g.B])
			case circuit.OpAddConst:
				if !e.haveWire[g.A] {
					continue
				}
				v = e.wires[g.A].Add(g.Const)
			case circuit.OpMulConst:
				if !e.haveWire[g.A] {
					continue
				}
				v = e.wires[g.A].Mul(g.Const)
			case circuit.OpMul:
				if !e.haveWire[g.A] || !e.haveWire[g.B] {
					continue
				}
				// Start the Beaver instance once (Start is idempotent);
				// its completion resolves this wire.
				tr := e.trips[g.MulIndex]
				e.beavers[g.MulIndex].Start(e.wires[g.A], e.wires[g.B], tr.X, tr.Y, tr.Z)
				continue
			}
			e.wires[idx] = v
			e.haveWire[idx] = true
			progress = true
		}
	}
	e.maybeOutputPhase()
}

func (e *CirEval) onMul(k int, z field.Element) {
	idx := e.circ.MulGate(k)
	if !e.haveWire[idx] {
		e.wires[idx] = z
		e.haveWire[idx] = true
	}
	e.sweep()
}

// --- Output and termination (shared) --------------------------------

// maybeOutputPhase starts public output reconstruction when every
// output wire's share is resolved.
func (e *CirEval) maybeOutputPhase() {
	shares := make([]field.Element, len(e.circ.Outputs))
	for i, w := range e.circ.Outputs {
		if !e.haveWire[w] {
			return
		}
		shares[i] = e.wires[w]
	}
	e.outRecon.Start(shares)
}

func (e *CirEval) onReconstructed(vals []field.Element) {
	if e.sentReady {
		return
	}
	e.sentReady = true
	e.rt.SendAll(e.inst, msgReady, wire.NewWriterCap(2+8*len(vals)).Elements(vals).Bytes())
}

// Deliver implements proto.Handler: the Bracha-style termination vote.
func (e *CirEval) Deliver(from int, msgType uint8, body []byte) {
	if msgType != msgReady || e.terminated {
		return
	}
	r := wire.NewReader(body)
	vals := r.Elements()
	if r.Done() != nil || len(vals) != len(e.circ.Outputs) {
		return
	}
	key := string(body)
	set := e.readyFrom[key]
	if set == nil {
		set = make(map[int]bool)
		e.readyFrom[key] = set
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) >= e.cfg.Ts+1 && !e.sentReady {
		e.sentReady = true
		e.rt.SendAll(e.inst, msgReady, body)
	}
	if len(set) >= 2*e.cfg.Ts+1 {
		e.terminated = true
		e.output = vals
		if e.onOutput != nil {
			e.onOutput(vals)
		}
	}
}
