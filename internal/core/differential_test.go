package core

import (
	"math/rand/v2"
	"testing"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/proto"
)

// randomCircuit builds a small random 5-party circuit with muls deep
// enough to exercise multi-gate layers (shared wires included).
func randomCircuit(t *testing.T, seed uint64) *circuit.Circuit {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 7))
	b := circuit.NewBuilder(5)
	wires := make([]circuit.Wire, 0, 32)
	for i := 1; i <= 5; i++ {
		wires = append(wires, b.Input(i))
	}
	for k := 0; k < 10; k++ {
		a := wires[r.IntN(len(wires))]
		bb := wires[r.IntN(len(wires))]
		switch r.IntN(5) {
		case 0:
			wires = append(wires, b.Add(a, bb))
		case 1:
			wires = append(wires, b.Sub(a, bb))
		case 2, 3:
			wires = append(wires, b.Mul(a, bb))
		case 4:
			wires = append(wires, b.AddConst(a, field.Random(r)))
		}
	}
	b.Output(wires[len(wires)-1])
	b.Output(wires[len(wires)-2])
	return b.Build()
}

// runMode evaluates circ under the given evaluator mode and returns
// per-party outputs and agreed sets.
func runMode(t *testing.T, circ *circuit.Circuit, mode EvalMode, seed uint64, in []field.Element) ([][]field.Element, [][]int) {
	t.Helper()
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	outs := make([][]field.Element, 6)
	engines := make([]*CirEval, 6)
	for i := 1; i <= 5; i++ {
		i := i
		engines[i] = NewWithMode(w.Runtimes[i], "mpc", circ, c, coin, 0, mode, func(out []field.Element) {
			outs[i] = out
		})
	}
	for i := 1; i <= 5; i++ {
		engines[i].Start(in[i-1])
	}
	w.RunToQuiescence()
	css := make([][]int, 6)
	for i := 1; i <= 5; i++ {
		if outs[i] == nil {
			t.Fatalf("mode %d: party %d did not terminate", mode, i)
		}
		css[i] = engines[i].CS()
	}
	return outs, css
}

// TestLayeredMatchesPerGate is the evaluator differential test: on
// random circuits, the layered worklist evaluator and the per-gate
// reference must produce identical outputs and agreement sets — the
// layering changes message grouping, never values.
func TestLayeredMatchesPerGate(t *testing.T) {
	for trial := uint64(0); trial < 5; trial++ {
		circ := randomCircuit(t, trial)
		r := rand.New(rand.NewPCG(trial, 11))
		in := make([]field.Element, 5)
		for i := range in {
			in[i] = field.Random(r)
		}
		layered, layeredCS := runMode(t, circ, EvalLayered, trial, in)
		perGate, perGateCS := runMode(t, circ, EvalPerGate, trial, in)
		for i := 1; i <= 5; i++ {
			if len(layered[i]) != len(perGate[i]) {
				t.Fatalf("trial %d party %d: output arity %d vs %d", trial, i, len(layered[i]), len(perGate[i]))
			}
			for k := range layered[i] {
				if layered[i][k] != perGate[i][k] {
					t.Fatalf("trial %d party %d output[%d]: layered %v != per-gate %v",
						trial, i, k, layered[i][k], perGate[i][k])
				}
			}
			if len(layeredCS[i]) != len(perGateCS[i]) {
				t.Fatalf("trial %d party %d: CS %v vs %v", trial, i, layeredCS[i], perGateCS[i])
			}
			for k := range layeredCS[i] {
				if layeredCS[i][k] != perGateCS[i][k] {
					t.Fatalf("trial %d party %d: CS %v vs %v", trial, i, layeredCS[i], perGateCS[i])
				}
			}
		}
	}
}

// TestLayeredDeepGrid runs the layered evaluator on the depth-heavy
// grid shape (every layer holds several muls) and checks the outputs
// against the clear evaluation.
func TestLayeredDeepGrid(t *testing.T) {
	circ := circuit.MulGrid(5, 4, 5)
	if circ.MulCount != 20 || circ.MulDepth != 5 {
		t.Fatalf("grid shape cM=%d DM=%d, want 20/5", circ.MulCount, circ.MulDepth)
	}
	for d, lay := range circ.MulLayers {
		if len(lay) != 4 {
			t.Fatalf("layer %d has %d muls, want 4", d+1, len(lay))
		}
	}
	in := inputs5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg5(), Network: proto.Sync, Seed: 31})
	h := newHarness(w, circ, 31)
	h.start(in, nil)
	w.RunToQuiescence()
	h.verify(t, circ, in)
}
