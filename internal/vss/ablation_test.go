package vss

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/poly"
)

// TestA3BranchFrequencies is the A3 ablation of DESIGN.md: in
// synchronous honest-dealer runs the acceptance ΠBA always takes the
// (W,E,F) branch (output 0); under a hostile asynchronous schedule
// that starves the dealer's links past every regular-mode deadline,
// the same protocol must flip to the (n,ta)-star branch (output 1)
// and still deliver correct shares.
func TestA3BranchFrequencies(t *testing.T) {
	c := cfg8()
	r := rand.New(rand.NewPCG(77, 77))
	qs := []poly.Poly{poly.Random(r, c.Ts, field.Random(r))}

	// Synchronous: branch 0, always.
	for seed := uint64(0); seed < 3; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: seed})
		h := newHarness(w, 1, 1, seed)
		h.insts[1].Start(qs)
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			out, ok := h.insts[i].BAOutcome()
			if !ok || out != 0 {
				t.Fatalf("sync seed %d: party %d took branch %d/%v, want 0", seed, i, out, ok)
			}
		}
	}

	// Asynchronous with the dealer's traffic starved until far past the
	// acceptance deadline: the regular path cannot complete, the star
	// branch must.
	sawStar := false
	for seed := uint64(0); seed < 4; seed++ {
		pol := sim.StarvePolicy{
			Base:   sim.AsyncPolicy{Delta: c.Delta},
			Until:  sim.Time(Deadline(c)) + 200,
			Starve: func(from, to int) bool { return from == 1 },
		}
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Async, Policy: pol, Seed: seed})
		h := newHarness(w, 1, 1, seed)
		h.insts[1].Start(qs)
		w.RunToQuiescence()
		branch, ok := h.insts[2].BAOutcome()
		if ok && branch == 1 {
			sawStar = true
		}
		// Regardless of branch, every party must end with correct shares.
		for i := 1; i <= c.N; i++ {
			if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
				t.Fatalf("async seed %d: party %d bad output %v", seed, i, h.outs[i])
			}
		}
	}
	if !sawStar {
		t.Fatal("no starved run exercised the (n,ta)-star branch")
	}
}

// TestA3StarBranchWithByzantineDealerHelpers checks the star branch
// also engages when a corrupt party (not the dealer) suppresses its
// result broadcasts: the regular graph misses edges while the
// eventual graph completes.
func TestA3StarBranchEventualGraph(t *testing.T) {
	c := cfg8()
	r := rand.New(rand.NewPCG(78, 78))
	qs := []poly.Poly{poly.Random(r, c.Ts, field.Random(r))}
	// Delay (not drop) all result-vector traffic of two corrupt
	// parties far beyond the acceptance deadline.
	extra := sim.Time(Deadline(c)) + 500
	ctrl := adversary.NewController().
		Set(3, adversary.DelayMatching(adversary.InstanceContains("/res/"), extra)).
		Set(6, adversary.DelayMatching(adversary.InstanceContains("/res/"), extra))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 9, Corrupt: []int{3, 6}, Interceptor: ctrl,
	})
	h := newHarness(w, 1, 1, 9)
	h.insts[1].Start(qs)
	w.RunToQuiescence()
	// Honest parties must still obtain their correct shares — via the
	// W path (the honest clique suffices) or the star path; both are
	// acceptable, correctness is not.
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
			t.Fatalf("party %d bad output under delayed result vectors", i)
		}
	}
}
