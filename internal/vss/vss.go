// Package vss implements ΠVSS (Fig 4, Theorem 4.16): the paper's
// best-of-both-worlds verifiable secret sharing for a dealer D with L
// polynomials of degree ts, tolerating ts corruptions in a synchronous
// and ta in an asynchronous network (3ts + ta < n).
//
// ΠVSS upgrades ΠWPS's weak commitment: the pair-wise consistency
// checks are performed on wps-shares — each party P_j re-shares the row
// polynomial it received from D through its own sub-instance Π(j)WPS —
// so that parties outside the certified set W can reconstruct their
// rows from the wps-shares of F's members, which even corrupt members
// of F are bound to (they had to share polynomials on the committed
// bivariate polynomial to make it into F). The consistency-graph,
// (W,E,F), acceptance-ΠBA and (n,ta)-star machinery is the shared core
// of package consist, anchored one WPS-deadline later than in ΠWPS.
//
// Synchronous, honest D: every party outputs {q^(ℓ)(α_i)} at
// TVSS = Δ + TWPS + 2TBC + TBA. Corrupt D: strong commitment — if any
// honest party outputs, a unique degree-ts polynomial vector is fixed
// and every honest party (eventually / within 2Δ in sync) outputs its
// points on it.
package vss

import (
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/consist"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/wire"
	"repro/internal/wps"
	"repro/poly"
)

// MsgShare carries D's L row polynomials to one party on the VSS
// instance's own path.
const MsgShare uint8 = 1

// VSS is one party's state in a ΠVSS instance.
type VSS struct {
	rt     *proto.Runtime
	inst   string
	dealer int
	L      int
	cfg    proto.Config
	coin   aba.CoinSource
	start  sim.Time
	tb     timing.Bounds

	core *consist.Core

	// Dealer-only state.
	bivars []*poly.Symmetric

	// Row state.
	myRows  []poly.Poly
	started bool // own sub-WPS invoked

	// Sub-WPS instances: subWPS[j] is Π(j)WPS re-sharing P_j's row.
	subWPS []*wps.WPS
	// shareFrom[j] = this party's wps-shares from Π(j)WPS, i.e. the
	// supposedly common points q_j^(ℓ)(α_me).
	shareFrom map[int][]field.Element

	done   bool
	shares []field.Element

	onOutput func(shares []field.Element)
}

// Deadline returns TVSS - T0 = Δ + TWPS + 2TBC + TBA.
func Deadline(cfg proto.Config) sim.Time {
	tb := timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds)
	return cfg.Delta + wps.Deadline(cfg) + 2*tb.BC + tb.BA
}

// New registers a ΠVSS instance anchored at structural start time start
// (a multiple of Δ). The dealer additionally calls Start with its L
// polynomials. onOutput fires exactly once per party that computes its
// VSS-shares.
func New(rt *proto.Runtime, inst string, dealer, l int, cfg proto.Config, coin aba.CoinSource, start sim.Time, onOutput func(shares []field.Element)) *VSS {
	v := &VSS{
		rt:        rt,
		inst:      inst,
		dealer:    dealer,
		L:         l,
		cfg:       cfg,
		coin:      coin,
		start:     start,
		tb:        timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds),
		subWPS:    make([]*wps.WPS, cfg.N+1),
		shareFrom: make(map[int][]field.Element),
		onOutput:  onOutput,
	}
	rt.Register(inst, v)
	// Sub-WPS instances are structurally anchored at T0 + Δ: with an
	// honest D in a synchronous network every party holds its rows
	// before then (Fig 4's "wait until the local time is a multiple of
	// Δ, then invoke Π(i)WPS").
	for j := 1; j <= cfg.N; j++ {
		j := j
		v.subWPS[j] = wps.New(rt, proto.Join(inst, "wps", fmt.Sprint(j)), j, l, cfg, coin, start+cfg.Delta,
			func(shares []field.Element) {
				v.shareFrom[j] = shares
				v.checkPair(j)
				v.maybeOutput()
			})
	}
	// The consistency core's result-vector slot is T0 + Δ + TWPS.
	v.core = consist.NewCore(rt, proto.Join(inst, "c"), dealer, cfg, coin, start+cfg.Delta+wps.Deadline(cfg), consist.Callbacks{
		VerifyNOK: func(i, j, idx int, val field.Element) bool {
			if v.bivars == nil || idx >= v.L {
				return false
			}
			return val == v.bivars[idx].Eval(poly.Alpha(j), poly.Alpha(i))
		},
		OnUpdate: func() { v.maybeOutput() },
	})
	return v
}

// Start provides the dealer's polynomials (each of degree ≤ ts) and
// distributes the rows of fresh random symmetric bivariate embeddings.
func (v *VSS) Start(qs []poly.Poly) {
	if v.rt.ID() != v.dealer {
		panic("vss: Start called by non-dealer")
	}
	if len(qs) != v.L {
		panic(fmt.Sprintf("vss: Start with %d polynomials, want %d", len(qs), v.L))
	}
	v.bivars = make([]*poly.Symmetric, v.L)
	for l, q := range qs {
		if q.Degree() > v.cfg.Ts {
			panic(fmt.Sprintf("vss: input polynomial %d has degree %d > ts=%d", l, q.Degree(), v.cfg.Ts))
		}
		s, err := poly.NewSymmetricRandom(v.rt.Rand(), v.cfg.Ts, q)
		if err != nil {
			panic(err)
		}
		v.bivars[l] = s
	}
	rows := make([][]poly.Poly, v.cfg.N)
	for i := 1; i <= v.cfg.N; i++ {
		rows[i-1] = make([]poly.Poly, v.L)
		for l := range rows[i-1] {
			rows[i-1][l] = v.bivars[l].RowForParty(i)
		}
	}
	v.StartRows(rows)
}

// StartRows distributes explicit per-party rows (adversarial dealers in
// tests use this to hand out inconsistent rows).
func (v *VSS) StartRows(rows [][]poly.Poly) {
	if v.rt.ID() != v.dealer {
		panic("vss: StartRows called by non-dealer")
	}
	for i := 1; i <= v.cfg.N; i++ {
		v.rt.Send(v.inst, i, MsgShare, wire.NewWriterCap(wire.PolysSize(rows[i-1])).Polys(rows[i-1]).Bytes())
	}
}

// SetBivariates equips a StartRows dealer with the underlying
// polynomials for NOK pruning.
func (v *VSS) SetBivariates(bs []*poly.Symmetric) { v.bivars = bs }

// Done reports whether this party has computed its VSS-shares.
func (v *VSS) Done() bool { return v.done }

// Shares returns the computed VSS-shares {q^(ℓ)(α_i)}; valid only
// after Done.
func (v *VSS) Shares() []field.Element { return v.shares }

// BAOutcome reports the acceptance ΠBA's decision once made: 0 selects
// the (W,E,F) path, 1 the (n,ta)-star fallback path. Exposed for the
// branch-frequency ablation (A3 in DESIGN.md).
func (v *VSS) BAOutcome() (uint8, bool) { return v.core.BAOutput() }

func (v *VSS) gridNext() sim.Time {
	now := v.rt.Now()
	d := v.cfg.Delta
	return ((now + d - 1) / d) * d
}

// Deliver implements proto.Handler for the VSS instance's own path.
func (v *VSS) Deliver(from int, msgType uint8, body []byte) {
	if msgType != MsgShare || from != v.dealer || v.myRows != nil {
		return
	}
	r := wire.NewReader(body)
	rows := r.Polys()
	if r.Done() != nil || len(rows) != v.L {
		return
	}
	for _, p := range rows {
		if p.Degree() > v.cfg.Ts {
			return
		}
	}
	v.myRows = rows
	v.rt.At(v.gridNext(), func() { v.invokeOwnWPS() })
	// Deterministic replay order: map iteration order must not leak
	// into the late-announcement send order.
	for j := 1; j <= v.cfg.N; j++ {
		if _, ok := v.shareFrom[j]; ok {
			v.checkPair(j)
		}
	}
	v.maybeOutput()
}

// invokeOwnWPS re-shares this party's rows through its own sub-WPS.
func (v *VSS) invokeOwnWPS() {
	if v.started || v.myRows == nil {
		return
	}
	v.started = true
	v.subWPS[v.rt.ID()].Start(v.myRows)
}

// checkPair publishes the pair-wise consistency result about P_j once
// both our rows and the wps-share from Π(j)WPS are available: OK iff
// q_j^(ℓ)(α_me) = q_me^(ℓ)(α_j) for every ℓ.
func (v *VSS) checkPair(j int) {
	if v.myRows == nil {
		return
	}
	shares, ok := v.shareFrom[j]
	if !ok {
		return
	}
	rep := &consist.Report{OK: true}
	for l := 0; l < v.L; l++ {
		if shares[l] != v.myRows[l].Eval(poly.Alpha(j)) {
			rep.OK = false
			rep.NokIdx = l
			rep.NokVal = v.myRows[l].Eval(poly.Alpha(j))
			break
		}
	}
	v.core.SetReport(j, rep)
}

// maybeOutput drives the two output paths of Fig 4's local computation.
func (v *VSS) maybeOutput() {
	if v.done {
		return
	}
	out, ok := v.core.BAOutput()
	if !ok {
		return
	}
	if out == 0 {
		wef, ok := v.core.WEFMsg()
		if !ok {
			return
		}
		if contains(wef.W, v.rt.ID()) && v.myRows != nil {
			v.outputOwn()
			return
		}
		v.tryInterpolate(wef.Star.F)
		return
	}
	star, ok := v.core.Star()
	if !ok {
		return
	}
	if contains(star.F, v.rt.ID()) && v.myRows != nil {
		v.outputOwn()
		return
	}
	v.tryInterpolate(star.F)
}

func contains(vs []int, x int) bool {
	for _, v := range vs {
		if v == x {
			return true
		}
	}
	return false
}

func (v *VSS) outputOwn() {
	shares := make([]field.Element, v.L)
	for l := range shares {
		shares[l] = v.myRows[l].Eval(field.Zero)
	}
	v.finish(shares)
}

// tryInterpolate implements the SS_i mechanism: collect wps-shares from
// ts+1 members of the provider set (F or F'), interpolate this party's
// row per polynomial, and output the constant terms.
func (v *VSS) tryInterpolate(providers []int) {
	var ss []int
	for _, j := range providers {
		if _, ok := v.shareFrom[j]; ok {
			ss = append(ss, j)
		}
	}
	if len(ss) < v.cfg.Ts+1 {
		return
	}
	// Deterministic choice: the ts+1 lowest indices (providers are
	// sorted by construction in graph.Star, but sort defensively).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
	ss = ss[:v.cfg.Ts+1]
	// One cached kernel serves all L interpolations (and every other
	// party interpolating from the same provider prefix this run).
	xs := make([]field.Element, len(ss))
	for i, j := range ss {
		xs[i] = poly.Alpha(j)
	}
	kern, err := v.rt.Kernels().Get(xs)
	if err != nil {
		return
	}
	ys := make([]field.Element, len(ss))
	shares := make([]field.Element, v.L)
	for l := 0; l < v.L; l++ {
		for i, j := range ss {
			ys[i] = v.shareFrom[j][l]
		}
		shares[l] = kern.EvalAt(ys, field.Zero)
	}
	v.finish(shares)
}

func (v *VSS) finish(shares []field.Element) {
	if v.done {
		return
	}
	v.done = true
	v.shares = shares
	if v.onOutput != nil {
		v.onOutput(shares)
	}
}
