package vss

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/poly"
)

func cfg8() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10, CoinRounds: 8} }
func cfg5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

type harness struct {
	w     *proto.World
	insts []*VSS
	outs  [][]field.Element
	outAt []sim.Time
}

func newHarness(w *proto.World, dealer, l int, seed uint64) *harness {
	h := &harness{
		w:     w,
		insts: make([]*VSS, w.Cfg.N+1),
		outs:  make([][]field.Element, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.insts[i] = New(w.Runtimes[i], "vss", dealer, l, w.Cfg, coin, 0, func(s []field.Element) {
			h.outs[i] = s
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func randPolys(r *rand.Rand, l, d int) []poly.Poly {
	qs := make([]poly.Poly, l)
	for i := range qs {
		qs[i] = poly.Random(r, d, field.Random(r))
	}
	return qs
}

// checkCommitment verifies honest outputs lie on a single degree-ts
// polynomial per slot with at least minHolders honest holders, and
// returns the committed polynomials.
func (h *harness) checkCommitment(t *testing.T, l, minHolders int) []poly.Poly {
	t.Helper()
	var holders []int
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) || h.outs[i] == nil {
			continue
		}
		holders = append(holders, i)
	}
	if len(holders) < minHolders {
		t.Fatalf("only %d honest holders, want ≥ %d", len(holders), minHolders)
	}
	ts := h.w.Cfg.Ts
	committed := make([]poly.Poly, l)
	for slot := 0; slot < l; slot++ {
		pts := make([]poly.Point, 0, ts+1)
		for _, i := range holders[:ts+1] {
			pts = append(pts, poly.Point{X: poly.Alpha(i), Y: h.outs[i][slot]})
		}
		q, err := poly.Interpolate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if q.Degree() > ts {
			t.Fatalf("slot %d: committed degree %d > ts", slot, q.Degree())
		}
		for _, i := range holders {
			if h.outs[i][slot] != q.Eval(poly.Alpha(i)) {
				t.Fatalf("slot %d: party %d off the committed polynomial", slot, i)
			}
		}
		committed[slot] = q
	}
	return committed
}

func TestHonestDealerSync(t *testing.T) {
	for _, c := range []proto.Config{cfg5(), cfg8()} {
		seed := uint64(1)
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: seed})
		const L = 2
		h := newHarness(w, 2, L, seed)
		r := rand.New(rand.NewPCG(seed, 42))
		qs := randPolys(r, L, c.Ts)
		h.insts[2].Start(qs)
		w.RunToQuiescence()
		deadline := Deadline(c)
		for i := 1; i <= c.N; i++ {
			if h.outs[i] == nil {
				t.Fatalf("n=%d: party %d no output", c.N, i)
			}
			for l := 0; l < L; l++ {
				if h.outs[i][l] != qs[l].Eval(poly.Alpha(i)) {
					t.Fatalf("n=%d: party %d wrong share for poly %d", c.N, i, l)
				}
			}
			if h.outAt[i] > deadline {
				t.Fatalf("n=%d: party %d output at %d > TVSS=%d", c.N, i, h.outAt[i], deadline)
			}
		}
	}
}

func TestHonestDealerSyncN11(t *testing.T) {
	// A larger configuration: n=11, ts=3, ta=1 (3·3+1 = 10 < 11).
	if testing.Short() {
		t.Skip("n=11 VSS skipped in -short mode")
	}
	c := proto.Config{N: 11, Ts: 3, Ta: 1, Delta: 10, CoinRounds: 8}
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 17})
	h := newHarness(w, 4, 1, 17)
	r := rand.New(rand.NewPCG(17, 17))
	qs := randPolys(r, 1, c.Ts)
	h.insts[4].Start(qs)
	w.RunToQuiescence()
	for i := 1; i <= c.N; i++ {
		if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
			t.Fatalf("party %d bad output at n=11", i)
		}
		if h.outAt[i] > Deadline(c) {
			t.Fatalf("party %d late at n=11: %d > %d", i, h.outAt[i], Deadline(c))
		}
	}
}

func TestHonestDealerSyncWithByzantine(t *testing.T) {
	// ts corrupt parties misbehave across all sub-protocols; honest
	// parties still receive correct shares by TVSS.
	for seed := uint64(0); seed < 2; seed++ {
		c := cfg8()
		ctrl := adversary.NewController().
			Set(4, adversary.GarbleMatching(adversary.InstanceContains("/c/"))).
			Set(7, adversary.GarbleMatching(adversary.InstanceContains("wps")))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: seed, Corrupt: []int{4, 7}, Interceptor: ctrl,
		})
		h := newHarness(w, 3, 1, seed)
		r := rand.New(rand.NewPCG(seed, 5))
		qs := randPolys(r, 1, c.Ts)
		h.insts[3].Start(qs)
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
				t.Fatalf("seed %d: party %d bad output %v", seed, i, h.outs[i])
			}
			if h.outAt[i] > Deadline(c) {
				t.Fatalf("seed %d: party %d late: %d > %d", seed, i, h.outAt[i], Deadline(c))
			}
		}
	}
}

func TestHonestDealerAsync(t *testing.T) {
	for seed := uint64(0); seed < 2; seed++ {
		c := cfg8()
		ctrl := adversary.NewController().Set(6, adversary.GarbleMatching(func(string) bool { return true }))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{6}, Interceptor: ctrl,
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 6))
		qs := randPolys(r, 1, c.Ts)
		h.insts[1].Start(qs)
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
				t.Fatalf("seed %d: party %d bad output (ta-correctness)", seed, i)
			}
		}
	}
}

func TestSilentDealer(t *testing.T) {
	ctrl := adversary.NewController().Set(2, adversary.Silent())
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg5(), Network: proto.Sync, Seed: 3, Corrupt: []int{2}, Interceptor: ctrl,
	})
	h := newHarness(w, 2, 1, 3)
	r := rand.New(rand.NewPCG(3, 3))
	h.insts[2].Start(randPolys(r, 1, w.Cfg.Ts))
	w.RunToQuiescence()
	for i := 1; i <= w.Cfg.N; i++ {
		if !w.IsCorrupt(i) && h.outs[i] != nil {
			t.Fatalf("party %d output from silent dealer", i)
		}
	}
}

func corruptRows(r *rand.Rand, c proto.Config, l int, victims map[int]bool) ([][]poly.Poly, []*poly.Symmetric) {
	qs := randPolys(r, l, c.Ts)
	bivars := make([]*poly.Symmetric, l)
	for i := range bivars {
		s, err := poly.NewSymmetricRandom(r, c.Ts, qs[i])
		if err != nil {
			panic(err)
		}
		bivars[i] = s
	}
	rows := make([][]poly.Poly, c.N)
	for i := 1; i <= c.N; i++ {
		rows[i-1] = make([]poly.Poly, l)
		for slot := range rows[i-1] {
			if victims[i] {
				rows[i-1][slot] = poly.Random(r, c.Ts, field.Random(r))
			} else {
				rows[i-1][slot] = bivars[slot].RowForParty(i)
			}
		}
	}
	return rows, bivars
}

func TestCorruptDealerStrongCommitmentSync(t *testing.T) {
	// ts-strong commitment (Lemma 4.13): either no honest output, or a
	// unique degree-ts polynomial exists and EVERY honest party outputs
	// its point on it. This is VSS's upgrade over WPS (where only ts+1
	// holders are guaranteed).
	for seed := uint64(0); seed < 4; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: seed, Corrupt: []int{1},
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 7))
		rows, bivars := corruptRows(r, c, 1, map[int]bool{5: true, 8: true})
		h.insts[1].StartRows(rows)
		h.insts[1].SetBivariates(bivars)
		w.RunToQuiescence()
		any := false
		for i := 2; i <= c.N; i++ {
			if h.outs[i] != nil {
				any = true
			}
		}
		if !any {
			continue
		}
		// All 7 honest parties must output (strong commitment).
		h.checkCommitment(t, 1, c.N-1)
	}
}

func TestCorruptDealerStrongCommitmentAsync(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{1},
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 8))
		rows, bivars := corruptRows(r, c, 1, map[int]bool{3: true})
		h.insts[1].StartRows(rows)
		h.insts[1].SetBivariates(bivars)
		w.RunToQuiescence()
		any := false
		for i := 2; i <= c.N; i++ {
			if h.outs[i] != nil {
				any = true
			}
		}
		if !any {
			continue
		}
		h.checkCommitment(t, 1, c.N-1)
	}
}

func TestCorruptDealerLateDistribution(t *testing.T) {
	// A corrupt dealer that distributes (consistent) rows but far too
	// late: the regular path must not accept; the fallback (n,ta)-star
	// path should still commit a polynomial eventually, or no one
	// outputs. Either way the commitment structure must hold.
	c := cfg8()
	ctrl := adversary.NewController().Set(2, adversary.DelayMatching(
		func(inst string) bool { return inst == "vss" }, 100*c.Delta))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 5, Corrupt: []int{2}, Interceptor: ctrl,
	})
	h := newHarness(w, 2, 1, 5)
	r := rand.New(rand.NewPCG(5, 9))
	qs := randPolys(r, 1, c.Ts)
	h.insts[2].Start(qs)
	w.RunToQuiescence()
	any := false
	for i := 1; i <= c.N; i++ {
		if !w.IsCorrupt(i) && h.outs[i] != nil {
			any = true
		}
	}
	if any {
		committed := h.checkCommitment(t, 1, c.N-1)
		// With consistent-but-late rows the committed polynomial is q.
		if !committed[0].Equal(qs[0]) {
			t.Fatalf("committed polynomial differs from dealt one")
		}
	}
}

func TestStragglerGapSync(t *testing.T) {
	// Theorem 4.16: with a corrupt dealer in sync, output times differ
	// by at most 2Δ across honest parties (when outputs happen after
	// TVSS), or all land at TVSS.
	for seed := uint64(0); seed < 3; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: seed, Corrupt: []int{1},
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 10))
		rows, bivars := corruptRows(r, c, 1, map[int]bool{7: true})
		h.insts[1].StartRows(rows)
		h.insts[1].SetBivariates(bivars)
		w.RunToQuiescence()
		var minT, maxT sim.Time
		count := 0
		for i := 2; i <= c.N; i++ {
			if h.outs[i] == nil {
				continue
			}
			count++
			if minT == 0 || h.outAt[i] < minT {
				minT = h.outAt[i]
			}
			if h.outAt[i] > maxT {
				maxT = h.outAt[i]
			}
		}
		if count == 0 {
			continue
		}
		if maxT-minT > 2*c.Delta {
			t.Fatalf("seed %d: straggler gap %d > 2Δ (min %d max %d)", seed, maxT-minT, minT, maxT)
		}
	}
}

func TestDealerEquivocatingRowsAsync(t *testing.T) {
	// Corrupt dealer + async: hands different bivariate rows to two
	// halves. Strong commitment: if anyone outputs, everyone outputs on
	// one committed polynomial.
	for seed := uint64(0); seed < 3; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{4},
		})
		h := newHarness(w, 4, 1, seed)
		r := rand.New(rand.NewPCG(seed, 11))
		rowsA, bivars := corruptRows(r, c, 1, nil)
		rowsB, _ := corruptRows(r, c, 1, nil)
		mixed := make([][]poly.Poly, c.N)
		for i := 0; i < c.N; i++ {
			if i%2 == 0 {
				mixed[i] = rowsA[i]
			} else {
				mixed[i] = rowsB[i]
			}
		}
		h.insts[4].StartRows(mixed)
		h.insts[4].SetBivariates(bivars)
		w.RunToQuiescence()
		any := false
		for i := 1; i <= c.N; i++ {
			if !w.IsCorrupt(i) && h.outs[i] != nil {
				any = true
			}
		}
		if any {
			h.checkCommitment(t, 1, c.N-1)
		}
	}
}
