// Package proto provides the per-party protocol runtime: hierarchical
// protocol-instance routing, out-of-order message buffering, local
// timers, and the World harness that assembles n parties, a simulated
// network, and an adversary into a runnable system.
//
// Protocol instances are state machines identified by slash-separated
// instance paths (e.g. "vss/3/wps/5/bc/ok"). Messages arriving before
// the local instance exists are buffered and replayed on registration,
// which is how the paper's "the parties participate in instance Π..."
// steps — including deliberately delayed participation — are realised.
package proto

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/poly"
)

// Handler is a protocol instance: it consumes messages addressed to its
// instance path. Handlers run inside scheduler callbacks; no locking is
// needed.
type Handler interface {
	Deliver(from int, msgType uint8, body []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from int, msgType uint8, body []byte)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from int, msgType uint8, body []byte) { f(from, msgType, body) }

// bufferCap bounds per-instance buffering of early messages, protecting
// against Byzantine floods to never-registered instances.
const bufferCap = 1 << 14

type bufMsg struct {
	from    int
	msgType uint8
	body    []byte
}

type prefixEntry struct {
	prefix  string
	factory func(inst string) Handler
}

// Runtime is one party's execution environment.
type Runtime struct {
	id    int
	n     int
	sched *sim.Scheduler
	net   transport.Transport
	rng   *rand.Rand
	// kernels is the run-wide interpolation-kernel cache, shared by all
	// parties of a world (the simulation is single-threaded, and the
	// evaluation grid is public, so sharing leaks nothing).
	kernels *poly.KernelCache

	exact    map[string]Handler
	prefixes []prefixEntry
	buffer   map[string][]bufMsg

	// tracer receives instance lifecycle events; nil (the default) means
	// tracing is off.
	tracer obs.Tracer
}

// NewRuntime creates the runtime for party id (1-based) and attaches it
// to the transport (the in-memory network or a real socket backend —
// the runtime is agnostic; its clock hooks go through the shared
// scheduler either way).
func NewRuntime(id, n int, sched *sim.Scheduler, net transport.Transport, rng *rand.Rand) *Runtime {
	rt := &Runtime{
		id:      id,
		n:       n,
		sched:   sched,
		net:     net,
		rng:     rng,
		kernels: poly.NewKernelCache(),
		exact:   make(map[string]Handler),
		buffer:  make(map[string][]bufMsg),
	}
	net.Attach(id, rt)
	return rt
}

// SetKernelCache replaces this runtime's interpolation-kernel cache;
// the World harness points every party at one shared per-run cache.
func (rt *Runtime) SetKernelCache(c *poly.KernelCache) { rt.kernels = c }

// Kernels returns the run's interpolation-kernel cache.
func (rt *Runtime) Kernels() *poly.KernelCache { return rt.kernels }

// stagedTracer is the per-party trace sink: during a parallel batch it
// stages emissions into the scheduler's per-event buffers (re-emitted
// at the barrier in canonical order), otherwise it forwards straight to
// the real sink. It exists only when tracing is on, so the nil-tracer
// fast path stays a single branch everywhere.
type stagedTracer struct {
	party int
	sched *sim.Scheduler
	real  obs.Tracer
}

// Emit implements obs.Tracer.
func (st *stagedTracer) Emit(ev obs.Event) {
	if st.sched.Staging() {
		st.sched.StageTrace(st.party, ev)
		return
	}
	st.real.Emit(ev)
}

// SetTracer installs tr as this party's trace sink (nil disables
// tracing). The runtime wraps it in a staging proxy so emissions from
// inside a parallel batch land in the trace stream at their canonical
// serial position.
func (rt *Runtime) SetTracer(tr obs.Tracer) {
	if tr == nil {
		rt.tracer = nil
		return
	}
	rt.tracer = &stagedTracer{party: rt.id, sched: rt.sched, real: tr}
}

// Tracer returns the installed trace sink (nil when tracing is off).
// Protocol layers built on the runtime (triple pool, engine) emit
// their own events through it.
func (rt *Runtime) Tracer() obs.Tracer { return rt.tracer }

// traceInstance records a handler installation for inst.
func (rt *Runtime) traceInstance(inst string) {
	if rt.tracer != nil {
		rt.tracer.Emit(obs.Event{
			Kind: obs.KInstance, Tick: int64(rt.sched.Now()), Party: rt.id, Inst: inst,
		})
	}
}

// ID returns this party's 1-based index.
func (rt *Runtime) ID() int { return rt.id }

// N returns the total number of parties.
func (rt *Runtime) N() int { return rt.n }

// Now returns the current (local = global virtual) time.
func (rt *Runtime) Now() sim.Time { return rt.sched.Now() }

// Rand returns this party's deterministic random stream.
func (rt *Runtime) Rand() *rand.Rand { return rt.rng }

// After schedules fn on this party's local clock after d ticks.
func (rt *Runtime) After(d sim.Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("proto: negative delay %d", d))
	}
	rt.sched.AtParty(rt.sched.Now()+d, sim.PrioDeliver, rt.id, fn)
}

// At schedules fn at absolute local time t; if t is already past, fn
// runs immediately via a zero-delay event.
func (rt *Runtime) At(t sim.Time, fn func()) {
	if t < rt.sched.Now() {
		t = rt.sched.Now()
	}
	rt.sched.AtParty(t, sim.PrioDeliver, rt.id, fn)
}

// AtProcessing schedules fn at absolute local time t in the
// post-processing class: it runs after every message delivery and
// ordinary timer of the same tick, realising protocol steps of the form
// "at time T, based on everything received by time T, do ...".
func (rt *Runtime) AtProcessing(t sim.Time, fn func()) {
	if t < rt.sched.Now() {
		t = rt.sched.Now()
	}
	rt.sched.AtParty(t, sim.PrioProcess, rt.id, fn)
}

// Defer runs fn on this party's behalf: immediately on the serial path,
// or — when called from inside a parallel batch — staged to the per-tick
// barrier, where it executes at this event's canonical serial position.
// Layers above the runtime (engine completion callbacks, pool refill
// accounting) use it to fold per-party results into shared state
// without racing the other parties' workers.
func (rt *Runtime) Defer(fn func()) { rt.sched.DeferParty(rt.id, fn) }

// Register installs h as the handler for the exact instance path inst
// and replays any buffered messages for it. Registering a duplicate
// instance panics: it indicates a protocol-composition bug.
func (rt *Runtime) Register(inst string, h Handler) {
	if _, dup := rt.exact[inst]; dup {
		panic(fmt.Sprintf("proto: party %d: duplicate instance %q", rt.id, inst))
	}
	rt.traceInstance(inst)
	rt.exact[inst] = h
	if msgs, ok := rt.buffer[inst]; ok {
		delete(rt.buffer, inst)
		for _, m := range msgs {
			h.Deliver(m.from, m.msgType, m.body)
		}
	}
}

// Registered reports whether an exact handler exists for inst.
func (rt *Runtime) Registered(inst string) bool {
	_, ok := rt.exact[inst]
	return ok
}

// DropPrefix removes every exact handler and every buffered message
// whose instance path is prefix or lies under prefix+"/", returning
// the number of handlers dropped. A long-lived World hosting many
// session epochs retires each finished epoch's namespace this way so
// handler tables do not grow without bound; late traffic for a dropped
// instance is re-buffered and eventually discarded by the flood cap.
// Prefix factories (RegisterPrefix) are not affected.
func (rt *Runtime) DropPrefix(prefix string) int {
	sub := prefix + "/"
	dropped := 0
	for inst := range rt.exact {
		if inst == prefix || strings.HasPrefix(inst, sub) {
			delete(rt.exact, inst)
			dropped++
		}
	}
	for inst := range rt.buffer {
		if inst == prefix || strings.HasPrefix(inst, sub) {
			delete(rt.buffer, inst)
		}
	}
	if rt.tracer != nil {
		rt.tracer.Emit(obs.Event{
			Kind: obs.KInstanceDrop, Tick: int64(rt.sched.Now()),
			Party: rt.id, Inst: prefix, A: int64(dropped),
		})
	}
	return dropped
}

// RegisterPrefix installs a factory creating handlers on demand for any
// instance path beginning with prefix (which should end in "/"). The
// factory is invoked at most once per distinct instance path. It may
// either return the handler, or construct a protocol object that calls
// Register itself and return nil (self-registration). Buffered messages
// for matching paths are replayed immediately.
func (rt *Runtime) RegisterPrefix(prefix string, factory func(inst string) Handler) {
	rt.prefixes = append(rt.prefixes, prefixEntry{prefix: prefix, factory: factory})
	// Replay buffered traffic now matched by the new prefix.
	var matched []string
	for inst := range rt.buffer {
		if strings.HasPrefix(inst, prefix) {
			matched = append(matched, inst)
		}
	}
	// Deterministic order.
	for i := 1; i < len(matched); i++ {
		for j := i; j > 0 && matched[j] < matched[j-1]; j-- {
			matched[j], matched[j-1] = matched[j-1], matched[j]
		}
	}
	for _, inst := range matched {
		h := factory(inst)
		if h == nil {
			// Self-registering factory: Register already replayed the
			// buffer for this path; nothing to do if it registered.
			continue
		}
		msgs := rt.buffer[inst]
		delete(rt.buffer, inst)
		rt.traceInstance(inst)
		rt.exact[inst] = h
		for _, m := range msgs {
			h.Deliver(m.from, m.msgType, m.body)
		}
	}
}

// Dispatch implements sim.Dispatcher.
func (rt *Runtime) Dispatch(env sim.Envelope) {
	if h, ok := rt.exact[env.Inst]; ok {
		h.Deliver(env.From, env.Type, env.Body)
		return
	}
	for _, pe := range rt.prefixes {
		if strings.HasPrefix(env.Inst, pe.prefix) {
			h := pe.factory(env.Inst)
			if h == nil {
				// The factory may have self-registered the instance (e.g.
				// by constructing a protocol whose constructor calls
				// Register); if so, deliver to it.
				if h2, ok := rt.exact[env.Inst]; ok {
					h2.Deliver(env.From, env.Type, env.Body)
					return
				}
				break
			}
			rt.traceInstance(env.Inst)
			rt.exact[env.Inst] = h
			h.Deliver(env.From, env.Type, env.Body)
			return
		}
	}
	buf := rt.buffer[env.Inst]
	if len(buf) >= bufferCap {
		return // flood protection: drop
	}
	rt.buffer[env.Inst] = append(buf, bufMsg{from: env.From, msgType: env.Type, body: env.Body})
}

// Send transmits a message to party `to` for instance inst.
func (rt *Runtime) Send(inst string, to int, msgType uint8, body []byte) {
	rt.net.Send(sim.Envelope{From: rt.id, To: to, Inst: inst, Type: msgType, Body: body})
}

// SendAll transmits the message to every party, including the sender
// itself (self-delivery goes through the loopback with minimal delay,
// keeping protocol logic uniform).
func (rt *Runtime) SendAll(inst string, msgType uint8, body []byte) {
	for to := 1; to <= rt.n; to++ {
		rt.Send(inst, to, msgType, body)
	}
}

// Join builds an instance path from components.
func Join(parts ...string) string { return strings.Join(parts, "/") }
