package proto

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/poly"
)

// WorldOpts configures a simulated n-party system.
type WorldOpts struct {
	Cfg     Config
	Network NetKind
	// Policy overrides the delivery policy derived from Network when
	// non-nil (e.g. a StarvePolicy for targeted scheduling attacks).
	Policy sim.Policy
	// Seed makes the entire run deterministic.
	Seed uint64
	// Corrupt lists the adversary's (static) corruptions, 1-based.
	Corrupt []int
	// Interceptor rewrites corrupt parties' traffic; nil means corrupt
	// parties follow the protocol (harness may still give them bad
	// inputs).
	Interceptor sim.Interceptor
	// EventLimit optionally caps scheduler events (runaway guard).
	EventLimit uint64
	// Tracer receives trace events from the scheduler, network and every
	// party runtime. nil (the default) disables tracing; a traced run is
	// bit-identical to an untraced one.
	Tracer obs.Tracer
	// Transport selects the message-plane backend; nil means the
	// deterministic in-memory simulator (transport.Sim). The factory
	// receives the world's scheduler, delivery policy and network-delay
	// RNG, so every backend consumes policy delays in the same order and
	// a fixed seed replays the same virtual schedule on any backend.
	Transport transport.Factory
	// Workers sets the intra-tick worker-pool size: each tick's
	// PrioDeliver events are partitioned by party and executed
	// concurrently, with effects merged at a per-tick barrier in
	// canonical order, so the run is bit-identical to serial at every
	// pool size. 0 (the default) keeps the plain single-threaded loop.
	// Only the in-memory simulator supports it: an explicit Transport
	// factory (the lockstep socket backend rendezvouses party goroutines
	// with scheduler events) forces serial execution.
	Workers int
}

// World is an assembled n-party system: the shared virtual-time
// scheduler, a message-plane transport (the in-memory simulator by
// default), and one protocol runtime per party.
type World struct {
	Cfg     Config
	Network NetKind
	Sched   *sim.Scheduler
	Net     transport.Transport
	// Runtimes is 1-based: Runtimes[i] is party i; index 0 is nil.
	Runtimes []*Runtime

	corrupt map[int]bool
	epochs  int
	tracer  obs.Tracer

	// netPCG and prngs retain the raw PCG sources behind the network's
	// and the parties' rand.Rand wrappers: rand.Rand is not serializable
	// but *rand.PCG is, and checkpoint/restore needs the generators'
	// exact positions for a restored run to replay bit-identically.
	netPCG *rand.PCG
	prngs  []*rand.PCG // 1-based, like Runtimes
}

// Epoch is one session slot on a long-lived World. A World originally
// hosted exactly one protocol run, so instance paths ("mpc/lay/1"),
// timers and metrics were implicitly namespaced by the World itself;
// an engine that serves many sequential evaluations over one World
// needs an explicit per-evaluation dimension so the k-th online phase
// cannot collide with the (k-1)-th (Runtime.Register panics on
// duplicate instance paths — by design). BeginEpoch hands out that
// dimension: a monotone sequence number that Namespace folds into the
// instance path *below* the top-level family label, so per-family
// traffic metrics (sim.TopLabel) still aggregate across epochs.
type Epoch struct{ seq int }

// Seq returns the epoch's sequence number (0-based).
func (e Epoch) Seq() int { return e.seq }

// Namespace returns the instance namespace of family for this epoch,
// e.g. Namespace("mpc") of epoch 3 is "mpc/e3". The epoch component
// sits below the family label so metrics family breakdowns are stable
// across epochs.
func (e Epoch) Namespace(family string) string {
	return fmt.Sprintf("%s/e%d", family, e.seq)
}

// BeginEpoch allocates the next session epoch on this world. Every
// party of the world shares the returned epoch: the caller drives all
// runtimes through the same deterministic epoch sequence.
func (w *World) BeginEpoch() Epoch {
	e := Epoch{seq: w.epochs}
	w.epochs++
	if w.tracer != nil {
		w.tracer.Emit(obs.Event{
			Kind: obs.KEpochBegin, Tick: int64(w.Sched.Now()), A: int64(e.seq),
		})
	}
	return e
}

// Epochs returns the number of epochs begun so far.
func (w *World) Epochs() int { return w.epochs }

// NewWorld builds a world. It panics on invalid configuration or a
// failed transport bring-up: worlds are constructed by tests and
// harnesses where either is a programming error. Harnesses assembling
// over a real transport backend (whose bring-up can legitimately fail)
// use NewWorldE instead.
func NewWorld(opts WorldOpts) *World {
	w, err := NewWorldE(opts)
	if err != nil {
		panic(err)
	}
	return w
}

// NewWorldE builds a world, returning an error instead of panicking
// when the transport backend fails to come up (sockets can fail to
// bind or connect; the in-memory simulator cannot fail). Invalid
// configuration still panics — that is a programming error regardless
// of backend.
func NewWorldE(opts WorldOpts) (*World, error) {
	cfg := opts.Cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sched := sim.NewScheduler()
	sched.Limit = opts.EventLimit
	policy := opts.Policy
	if policy == nil {
		switch opts.Network {
		case Sync:
			policy = sim.SyncPolicy{Delta: cfg.Delta}
		case Async:
			policy = sim.AsyncPolicy{Delta: cfg.Delta}
		default:
			panic(fmt.Sprintf("proto: invalid network kind %v", opts.Network))
		}
	}
	factory := opts.Transport
	if factory == nil {
		factory = transport.Sim
		if opts.Workers > 0 {
			sched.SetParallel(opts.Workers, cfg.N)
		}
	}
	netPCG := rand.NewPCG(opts.Seed, 0x6e657477_6f726b00) // "network"
	net, err := factory(cfg.N, sched, policy, rand.New(netPCG))
	if err != nil {
		return nil, fmt.Errorf("proto: transport bring-up: %w", err)
	}

	w := &World{
		Cfg:      cfg,
		Network:  opts.Network,
		Sched:    sched,
		Net:      net,
		Runtimes: make([]*Runtime, cfg.N+1),
		corrupt:  make(map[int]bool),
		tracer:   opts.Tracer,
		netPCG:   netPCG,
		prngs:    make([]*rand.PCG, cfg.N+1),
	}
	if opts.Tracer != nil {
		sched.SetTracer(opts.Tracer)
		net.SetTracer(opts.Tracer)
	}
	// One kernel registry per world — the O(m²) barycentric builds are
	// paid once per distinct point set for the world's whole lifetime
	// (all epochs, refills and parties) — with per-party clone caches so
	// concurrent workers never share interpolation scratch.
	kernels := poly.NewKernelRegistry()
	for i := 1; i <= cfg.N; i++ {
		pcg := rand.NewPCG(opts.Seed^uint64(i)*0x9e3779b97f4a7c15, uint64(i))
		w.prngs[i] = pcg
		w.Runtimes[i] = NewRuntime(i, cfg.N, sched, net, rand.New(pcg))
		w.Runtimes[i].SetKernelCache(kernels.NewCache())
		w.Runtimes[i].SetTracer(opts.Tracer)
	}
	for _, c := range opts.Corrupt {
		if c < 1 || c > cfg.N {
			panic(fmt.Sprintf("proto: corrupt party %d out of range", c))
		}
		w.corrupt[c] = true
	}
	if len(opts.Corrupt) > 0 {
		net.SetCorrupt(opts.Corrupt, opts.Interceptor)
	}
	return w, nil
}

// IsCorrupt reports whether party i is corrupt.
func (w *World) IsCorrupt(i int) bool { return w.corrupt[i] }

// Honest returns the sorted honest party indices.
func (w *World) Honest() []int {
	var out []int
	for i := 1; i <= w.Cfg.N; i++ {
		if !w.corrupt[i] {
			out = append(out, i)
		}
	}
	return out
}

// CorruptCount returns the number of corrupt parties.
func (w *World) CorruptCount() int { return len(w.corrupt) }

// RunUntil advances the simulation to the horizon.
func (w *World) RunUntil(horizon sim.Time) { w.Sched.RunUntil(horizon) }

// RunToQuiescence processes all pending events.
func (w *World) RunToQuiescence() { w.Sched.RunToQuiescence() }

// Step executes the next scheduler event if one exists and the event
// limit is not exhausted, reporting whether an event ran. It is the
// single-step driver the pipelined engine uses: all in-flight epochs
// advance interleaved, one event at a time, until the one being waited
// on completes.
func (w *World) Step() bool {
	if w.Sched.Limit > 0 && w.Sched.Processed() >= w.Sched.Limit {
		return false
	}
	return w.Sched.Step()
}

// StepTick executes every event of the next pending tick (if any, and
// if the event limit is not exhausted), reporting whether any ran. It
// is the tick-granular driver the pipelined engine polls with: engine
// state is only inspected at tick boundaries, which is the same
// observation granularity at every worker count — a mid-tick stop
// would make the submission point (and with it every later sequence
// number and RNG draw) depend on where inside a tick a completion
// landed, which parallel batches cannot reproduce.
func (w *World) StepTick() bool {
	if w.Sched.Limit > 0 && w.Sched.Processed() >= w.Sched.Limit {
		return false
	}
	return w.Sched.StepTick()
}

// Metrics returns the network's communication metrics.
func (w *World) Metrics() *sim.Metrics { return w.Net.Metrics() }

// TransportErr reports the first transport fault (always nil for the
// in-memory simulator). Harnesses check it after running to
// quiescence: a faulted real transport stops delivering, so the run
// drains instead of hanging, and the fault must not masquerade as a
// protocol outcome.
func (w *World) TransportErr() error { return w.Net.Err() }

// Close releases the transport's OS resources (sockets, goroutines);
// a no-op for the in-memory simulator. Idempotent.
func (w *World) Close() error { return w.Net.Close() }

// Tracer returns the world's trace sink (nil when tracing is off).
func (w *World) Tracer() obs.Tracer { return w.tracer }

// WorldState is a World's serializable lifecycle state: everything a
// fresh NewWorld with the same options does NOT already reconstruct.
// The protocol handler tables and in-flight messages are deliberately
// absent — a world may only checkpoint at quiescence, where no events
// are pending and retired epochs' handlers are inert (the epoch counter
// guarantees restored sessions open fresh, non-colliding namespaces).
type WorldState struct {
	// Epochs is the BeginEpoch counter.
	Epochs int `json:"epochs"`
	// Sched is the virtual clock and event-sequence state.
	Sched sim.SchedulerState `json:"sched"`
	// Metrics is the communication counter state.
	Metrics sim.MetricsSnapshot `json:"metrics"`
	// NetRand is the network-delay PCG's marshaled position; PartyRand
	// the per-party protocol PCGs' (index 0 = party 1).
	NetRand   []byte   `json:"netRand"`
	PartyRand [][]byte `json:"partyRand"`
}

// Checkpoint captures the world's lifecycle state. It fails if the
// scheduler still holds pending events: closures cannot be serialized,
// so checkpoints exist only at quiescence.
func (w *World) Checkpoint() (*WorldState, error) {
	sched, err := w.Sched.Checkpoint()
	if err != nil {
		return nil, err
	}
	netRand, err := w.netPCG.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("proto: marshal network rng: %w", err)
	}
	st := &WorldState{
		Epochs:    w.epochs,
		Sched:     sched,
		Metrics:   w.Metrics().Snapshot(),
		NetRand:   netRand,
		PartyRand: make([][]byte, w.Cfg.N),
	}
	for i := 1; i <= w.Cfg.N; i++ {
		b, err := w.prngs[i].MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("proto: marshal party %d rng: %w", i, err)
		}
		st.PartyRand[i-1] = b
	}
	return st, nil
}

// Restore loads a checkpointed lifecycle state into a freshly built
// world (same options as the checkpointed one — the caller enforces
// that; this method validates only shape). On error the world is
// possibly half-restored and must be discarded.
func (w *World) Restore(st *WorldState) error {
	if st == nil {
		return fmt.Errorf("proto: restore from nil world state")
	}
	if st.Epochs < 0 {
		return fmt.Errorf("proto: restore with negative epoch counter %d", st.Epochs)
	}
	if len(st.PartyRand) != w.Cfg.N {
		return fmt.Errorf("proto: restore with %d party rng states for %d parties", len(st.PartyRand), w.Cfg.N)
	}
	if err := w.Sched.Restore(st.Sched); err != nil {
		return err
	}
	if err := w.Metrics().Restore(st.Metrics); err != nil {
		return err
	}
	if err := w.netPCG.UnmarshalBinary(st.NetRand); err != nil {
		return fmt.Errorf("proto: restore network rng: %w", err)
	}
	for i := 1; i <= w.Cfg.N; i++ {
		if err := w.prngs[i].UnmarshalBinary(st.PartyRand[i-1]); err != nil {
			return fmt.Errorf("proto: restore party %d rng: %w", i, err)
		}
	}
	w.epochs = st.Epochs
	return nil
}
