package proto

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

func testCfg() Config {
	return Config{N: 8, Ts: 2, Ta: 1, Delta: 10}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"paper example n=8", Config{N: 8, Ts: 2, Ta: 1, Delta: 10}, true},
		{"n=13 ts=3 ta=2", Config{N: 13, Ts: 3, Ta: 2, Delta: 10}, true},
		{"ta may be zero", Config{N: 7, Ts: 2, Ta: 0, Delta: 10}, true},
		{"violates 3ts+ta<n", Config{N: 7, Ts: 2, Ta: 1, Delta: 10}, false},
		{"ta > ts", Config{N: 12, Ts: 1, Ta: 2, Delta: 10}, false},
		{"too few parties", Config{N: 3, Ts: 0, Ta: 0, Delta: 10}, false},
		{"ts zero", Config{N: 8, Ts: 0, Ta: 0, Delta: 10}, false},
		{"zero delta", Config{N: 8, Ts: 2, Ta: 1}, false},
	}
	for _, tt := range tests {
		err := tt.cfg.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestWorldAssembly(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 1, Corrupt: []int{2, 5}})
	if got := w.Honest(); len(got) != 6 {
		t.Fatalf("honest count = %d, want 6", len(got))
	}
	if !w.IsCorrupt(2) || w.IsCorrupt(3) {
		t.Fatal("corruption flags wrong")
	}
	if w.Runtimes[0] != nil {
		t.Fatal("index 0 should be nil")
	}
	for i := 1; i <= 8; i++ {
		if w.Runtimes[i].ID() != i || w.Runtimes[i].N() != 8 {
			t.Fatalf("runtime %d misconfigured", i)
		}
	}
}

func TestSendAndRegister(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 2})
	var got []string
	w.Runtimes[2].Register("test/1", HandlerFunc(func(from int, mt uint8, body []byte) {
		got = append(got, string(body))
		if from != 1 || mt != 9 {
			t.Errorf("from=%d mt=%d", from, mt)
		}
	}))
	w.Runtimes[1].Send("test/1", 2, 9, []byte("hi"))
	w.RunToQuiescence()
	if len(got) != 1 || got[0] != "hi" {
		t.Fatalf("got %v", got)
	}
}

func TestBufferingBeforeRegistration(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 3})
	w.Runtimes[1].Send("late/1", 2, 0, []byte("a"))
	w.Runtimes[1].Send("late/1", 2, 0, []byte("b"))
	w.RunToQuiescence()
	var got []string
	w.Runtimes[2].Register("late/1", HandlerFunc(func(_ int, _ uint8, body []byte) {
		got = append(got, string(body))
	}))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("buffered replay = %v, want [a b]", got)
	}
}

func TestSendAllIncludesSelf(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 4})
	counts := make([]int, 9)
	for i := 1; i <= 8; i++ {
		i := i
		w.Runtimes[i].Register("bcast", HandlerFunc(func(int, uint8, []byte) { counts[i]++ }))
	}
	w.Runtimes[3].SendAll("bcast", 0, nil)
	w.RunToQuiescence()
	for i := 1; i <= 8; i++ {
		if counts[i] != 1 {
			t.Fatalf("party %d received %d, want 1", i, counts[i])
		}
	}
}

func TestRegisterPrefixFactory(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 5})
	created := map[string]int{}
	// Message arrives before prefix registration: buffered, then replayed.
	w.Runtimes[2].Send("dyn/0/x", 1, 0, []byte("early"))
	w.RunToQuiescence()
	var delivered []string
	w.Runtimes[1].RegisterPrefix("dyn/", func(inst string) Handler {
		created[inst]++
		return HandlerFunc(func(_ int, _ uint8, body []byte) {
			delivered = append(delivered, inst+":"+string(body))
		})
	})
	if len(delivered) != 1 || delivered[0] != "dyn/0/x:early" {
		t.Fatalf("prefix replay = %v", delivered)
	}
	// New instance created on demand.
	w.Runtimes[2].Send("dyn/1/y", 1, 0, []byte("live"))
	w.RunToQuiescence()
	if len(delivered) != 2 || delivered[1] != "dyn/1/y:live" {
		t.Fatalf("prefix live delivery = %v", delivered)
	}
	if created["dyn/0/x"] != 1 || created["dyn/1/y"] != 1 {
		t.Fatalf("factory invocations = %v", created)
	}
	// Second message to the existing instance reuses the handler.
	w.Runtimes[2].Send("dyn/1/y", 1, 0, []byte("again"))
	w.RunToQuiescence()
	if created["dyn/1/y"] != 1 {
		t.Fatal("factory called twice for same instance")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 6})
	w.Runtimes[1].Register("x", HandlerFunc(func(int, uint8, []byte) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	w.Runtimes[1].Register("x", HandlerFunc(func(int, uint8, []byte) {}))
}

func TestAtClampsPast(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 7})
	w.Sched.At(100, func() {})
	w.RunToQuiescence() // now = 100
	fired := false
	w.Runtimes[1].At(50, func() { fired = true }) // in the past: runs now
	w.RunToQuiescence()
	if !fired {
		t.Fatal("past-deadline At never fired")
	}
}

func TestCorruptTrafficIntercepted(t *testing.T) {
	ctrl := adversary.NewController().Set(2, adversary.Silent())
	w := NewWorld(WorldOpts{
		Cfg: testCfg(), Network: Sync, Seed: 8,
		Corrupt: []int{2}, Interceptor: ctrl,
	})
	got := 0
	w.Runtimes[1].Register("x", HandlerFunc(func(int, uint8, []byte) { got++ }))
	w.Runtimes[2].Send("x", 1, 0, nil) // silenced
	w.Runtimes[3].Send("x", 1, 0, nil) // honest, delivered
	w.RunToQuiescence()
	if got != 1 {
		t.Fatalf("delivered %d, want 1 (corrupt sender silenced)", got)
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() sim.Time {
		w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Async, Seed: 99})
		var last sim.Time
		for i := 1; i <= 8; i++ {
			w.Runtimes[i].Register("d", HandlerFunc(func(int, uint8, []byte) {
				last = w.Sched.Now()
			}))
		}
		for i := 1; i <= 8; i++ {
			w.Runtimes[i].SendAll("d", 0, []byte{byte(i)})
		}
		w.RunToQuiescence()
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic world: %d vs %d", a, b)
	}
}

func TestBufferFloodProtection(t *testing.T) {
	// Messages to a never-registered instance are buffered up to a cap
	// and then dropped, so Byzantine floods cannot exhaust memory.
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 12})
	for k := 0; k < bufferCap+100; k++ {
		w.Runtimes[1].Send("never", 2, 0, []byte{byte(k)})
	}
	w.RunToQuiescence()
	got := 0
	w.Runtimes[2].Register("never", HandlerFunc(func(int, uint8, []byte) { got++ }))
	if got != bufferCap {
		t.Fatalf("replayed %d buffered messages, want exactly the cap %d", got, bufferCap)
	}
}

func TestAtProcessingRunsAfterSameTickDeliveries(t *testing.T) {
	// A PrioProcess event scheduled long before a same-tick delivery
	// must still run after it — the mechanism behind "at time T, based
	// on everything received by time T".
	w := NewWorld(WorldOpts{Cfg: testCfg(), Network: Sync, Seed: 11})
	var order []string
	// Schedule the processing step first (low sequence number).
	w.Runtimes[2].AtProcessing(100, func() { order = append(order, "process") })
	// A timer at the same tick, created later.
	w.Runtimes[2].At(100, func() { order = append(order, "timer") })
	// And a chain of deferred timers landing exactly at 100.
	w.Runtimes[2].At(60, func() {
		w.Runtimes[2].After(40, func() { order = append(order, "chained") })
	})
	w.RunToQuiescence()
	if len(order) != 3 || order[2] != "process" {
		t.Fatalf("order = %v, want processing last", order)
	}
}

func TestNetKindString(t *testing.T) {
	if Sync.String() != "sync" || Async.String() != "async" {
		t.Fatal("NetKind strings wrong")
	}
	if NetKind(0).String() == "" {
		t.Fatal("invalid kind should still render")
	}
}
