package proto

import (
	"fmt"

	"repro/internal/sim"
)

// Config carries the resilience and timing parameters shared by every
// protocol in the stack.
type Config struct {
	// N is the number of parties P_1..P_N.
	N int
	// Ts is the corruption threshold tolerated in a synchronous network.
	Ts int
	// Ta is the corruption threshold tolerated in an asynchronous
	// network. The paper requires Ta ≤ Ts and 3·Ts + Ta < N.
	Ta int
	// Delta is the synchronous delivery bound Δ in virtual ticks.
	Delta sim.Time
	// CoinRounds is k, the round constant of the underlying ABA on
	// unanimous inputs (Lemma 3.3); it feeds the T_ABA = k·Δ bound.
	CoinRounds int
	// SyncOnly disables every asynchronous fallback path (ΠBC fallback
	// mode, late OK announcements, the (n,ta)-star branch), modelling a
	// purely synchronous protocol in the style of existing SMPC. It
	// exists for the baseline/ablation experiments (E12, A1 in
	// DESIGN.md): a SyncOnly stack matches the best-of-both-worlds one
	// in a synchronous network but loses liveness under asynchrony.
	SyncOnly bool
}

// Validate checks the paper's resilience conditions.
func (c Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("proto: need at least 4 parties, have %d", c.N)
	}
	if c.Ts < 1 {
		return fmt.Errorf("proto: ts must be at least 1, have %d", c.Ts)
	}
	if c.Ta < 0 || c.Ta > c.Ts {
		return fmt.Errorf("proto: need 0 <= ta <= ts, have ta=%d ts=%d", c.Ta, c.Ts)
	}
	if 3*c.Ts+c.Ta >= c.N {
		return fmt.Errorf("proto: need 3*ts + ta < n, have 3*%d + %d >= %d", c.Ts, c.Ta, c.N)
	}
	if c.Delta < 2 {
		return fmt.Errorf("proto: delta must be at least 2, have %d", c.Delta)
	}
	return nil
}

// withDefaults fills derived defaults.
func (c Config) withDefaults() Config {
	if c.Delta == 0 {
		c.Delta = 10
	}
	if c.CoinRounds == 0 {
		c.CoinRounds = 12
	}
	return c
}

// NetKind selects the simulated network model.
type NetKind int

// Network kinds. Values start at 1 so the zero value is invalid and must
// be set explicitly.
const (
	// Sync delivers every message within Δ.
	Sync NetKind = iota + 1
	// Async delivers with unbounded-but-finite, heavy-tailed delays.
	Async
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case Sync:
		return "sync"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}
