package proto

import (
	"testing"

	"repro/internal/sim"
)

// TestEpochNamespaces: epochs are monotone and their namespaces keep
// the family label on top (so metrics aggregate per family).
func TestEpochNamespaces(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8}, Network: Sync, Seed: 1})
	e0 := w.BeginEpoch()
	e1 := w.BeginEpoch()
	if e0.Seq() != 0 || e1.Seq() != 1 || w.Epochs() != 2 {
		t.Fatalf("epoch sequence broken: %d, %d (epochs=%d)", e0.Seq(), e1.Seq(), w.Epochs())
	}
	if got := e1.Namespace("mpc"); got != "mpc/e1" {
		t.Fatalf("namespace %q, want mpc/e1", got)
	}
	if sim.TopLabel(e1.Namespace("mpc")+"/lay/1") != "mpc" {
		t.Fatal("epoch namespace changed the metrics family label")
	}
}

// TestDropPrefix: retiring an epoch removes its exact handlers and
// buffered traffic, and only them.
func TestDropPrefix(t *testing.T) {
	w := NewWorld(WorldOpts{Cfg: Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8}, Network: Sync, Seed: 1})
	rt := w.Runtimes[1]
	noop := HandlerFunc(func(int, uint8, []byte) {})
	rt.Register("mpc/e0", noop)
	rt.Register("mpc/e0/in", noop)
	rt.Register("mpc/e1", noop)
	rt.Register("mpc/e10", noop) // shares the string prefix, not the path prefix
	// Buffered traffic for an unregistered epoch-0 instance.
	rt.Dispatch(sim.Envelope{From: 2, To: 1, Inst: "mpc/e0/lay/1", Type: 1, Body: []byte{1}})

	if got := rt.DropPrefix("mpc/e0"); got != 2 {
		t.Fatalf("dropped %d handlers, want 2", got)
	}
	if rt.Registered("mpc/e0") || rt.Registered("mpc/e0/in") {
		t.Fatal("epoch-0 handlers survived DropPrefix")
	}
	if !rt.Registered("mpc/e1") || !rt.Registered("mpc/e10") {
		t.Fatal("DropPrefix removed foreign instances")
	}
	// Re-registering the dropped path must not panic (the duplicate
	// guard is what DropPrefix exists to clear) and must not replay the
	// dropped buffer.
	seen := 0
	rt.Register("mpc/e0/lay/1", HandlerFunc(func(int, uint8, []byte) { seen++ }))
	if seen != 0 {
		t.Fatalf("dropped buffer replayed %d messages", seen)
	}
}
